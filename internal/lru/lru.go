package lru

import (
	"container/list"
	"sync"
)

// Cache is a string-keyed LRU cache over values of type V. A capacity of
// zero or less disables the cache: Get always misses and Put is a no-op,
// which keeps call sites free of nil checks (and gives benchmarks a
// cold-cache mode).
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *entry[V]
	items map[string]*list.Element

	hits, misses, evictions int64
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	c.mu.Lock()
	defer c.mu.Unlock()
	// The disabled check runs under the lock: Resize can shrink cap to 0
	// concurrently, and an unlocked read would race with that write.
	if c.cap <= 0 {
		return zero, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Peek returns the value cached under key without touching recency or
// the hit/miss counters. It exists for internal double-checks (the
// server's flight-leader recheck) that must not skew the cache-
// effectiveness statistics a paired Get already recorded.
func (c *Cache[V]) Peek(key string) (V, bool) {
	var zero V
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return zero, false
	}
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	return el.Value.(*entry[V]).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
}

// Resize changes the capacity in place, evicting least-recently-used
// entries when shrinking below the current length. The memory
// backpressure watcher uses it to trade hit rate for heap headroom
// without dropping the whole cache. Resizing a disabled cache (built
// with capacity <= 0) stays a no-op — re-enabling would surprise the
// Put sites that saw it disabled — and resizing to <= 0 purges and
// disables. Evictions forced by a shrink count in Stats.Evictions.
func (c *Cache[V]) Resize(capacity int) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if capacity <= 0 {
		c.evictions += int64(c.order.Len())
		c.order.Init()
		c.items = make(map[string]*list.Element)
		c.cap = 0
		return
	}
	for c.order.Len() > capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
	c.cap = capacity
}

// Capacity returns the current capacity (0 when disabled).
func (c *Cache[V]) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge drops every entry, leaving the counters intact.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
}

// Stats is a counter snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.cap,
	}
}
