package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ktpm/internal/graph"
	"ktpm/internal/heap"
	"ktpm/internal/lazy"
	"ktpm/internal/obs"
	"ktpm/internal/query"
	"ktpm/internal/store"
)

// Partitioner assigns every data-graph vertex to one of n shards, fixing
// which shard enumerates the matches rooted at that vertex.
type Partitioner interface {
	// Partition returns the shard assignment: out[v] in [0, n) for every
	// node v of g. Implementations must be deterministic — the assignment
	// is part of the database's identity, and /stats reports it.
	Partition(g *graph.Graph, n int) []int32
	// Name identifies the strategy in flags, logs, and /stats.
	Name() string
}

// Hash spreads vertices by a multiplicative hash of their IDs. It ignores
// labels: total vertex counts balance well, but a rare label's candidates
// can clump onto few shards.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	for v := range out {
		// Knuth's multiplicative hash: decorrelates the dense sequential
		// IDs from the modulus so contiguous generator output (which often
		// correlates with topology) spreads across shards.
		h := uint32(v) * 2654435761
		out[v] = int32(h % uint32(n))
	}
	return out
}

// LabelBalanced deals each label's vertices round-robin across shards, so
// the root-candidate set of any query label splits near-evenly (counts
// differ by at most one) regardless of label skew. This is the
// label-aware strategy: the scatter-gather's critical path is the slowest
// shard, and per-label balance bounds it for every possible root label.
type LabelBalanced struct{}

// Name implements Partitioner.
func (LabelBalanced) Name() string { return "label" }

// Partition implements Partitioner.
func (LabelBalanced) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	next := make([]int32, g.NumLabels())
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		l := g.Label(v)
		out[v] = next[l]
		next[l] = (next[l] + 1) % int32(n)
	}
	return out
}

// Parse resolves the flag spelling of a partitioner name ("hash",
// "label", case-insensitive); ok is false for unknown names, including
// the empty string — callers that want a default decide it themselves.
func Parse(name string) (Partitioner, bool) {
	switch strings.ToLower(name) {
	case "hash":
		return Hash{}, true
	case "label":
		return LabelBalanced{}, true
	}
	return nil, false
}

// DefaultChunkSize is the gather transport's default chunk: how many
// matches a shard accumulates before handing them to the coordinator in
// one channel operation. Chosen from the chunk-size sweep in
// BENCH_topk.json: per-match hand-off (chunk 1) costs one channel
// synchronization per match, while chunks past ~32 only grow the
// run-ahead — work a shard computes past the termination threshold,
// bounded by one chunk in flight plus one buffered per shard. Run-ahead
// is disproportionately expensive because the enumerator's per-match
// cost grows with how many matches it has emitted (every emission
// rescans the parked-candidate list), which is also why a single-shard
// DB skips the transport entirely (see TopK).
const DefaultChunkSize = 32

// chunkBuffer is the gather channel's capacity in chunks. One buffered
// chunk lets a producer start its next chunk while the coordinator
// consumes the previous; more would only grow abandoned work after the
// threshold stops a shard.
const chunkBuffer = 1

// DB is a root-partitioned view over one prepared closure: n shards, each
// holding a private store replica and the set of vertices it owns.
type DB struct {
	n      int
	name   string
	assign []int32        // assign[v] = shard owning vertex v
	sizes  []int          // vertices per shard
	stores []*store.Store // per-shard replicas of the base store
	merged []atomic.Int64 // matches each shard contributed to gathers
	chunk  atomic.Int32   // gather transport chunk size (matches per channel op)
}

// New partitions base's graph into n shards using p. The base store is
// left untouched (its caller may keep serving unsharded queries from it);
// each shard receives a replica sharing the base's derived-data plane, so
// summary tables and wildcard merges are derived once process-wide no
// matter the shard count, while I/O counters stay per shard.
func New(base *store.Store, n int, p Partitioner) (*DB, error) {
	return build(base, n, p, (*store.Store).Replica)
}

// NewDetached is New with every shard on a private derived-data plane:
// each shard re-derives the tables it touches, the pre-plane behavior.
// Kept for benchmarks quantifying the shared plane; production callers
// want New.
func NewDetached(base *store.Store, n int, p Partitioner) (*DB, error) {
	return build(base, n, p, (*store.Store).PrivateReplica)
}

func build(base *store.Store, n int, p Partitioner, replica func(*store.Store) *store.Store) (*DB, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", n)
	}
	g := base.Graph()
	assign := p.Partition(g, n)
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("shard: partitioner %s assigned %d of %d vertices", p.Name(), len(assign), g.NumNodes())
	}
	d := &DB{
		n:      n,
		name:   p.Name(),
		assign: assign,
		sizes:  make([]int, n),
		stores: make([]*store.Store, n),
		merged: make([]atomic.Int64, n),
	}
	for v, s := range assign {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("shard: partitioner %s put vertex %d in shard %d of %d", p.Name(), v, s, n)
		}
		d.sizes[s]++
	}
	for i := 0; i < n; i++ {
		d.stores[i] = replica(base)
	}
	d.chunk.Store(DefaultChunkSize)
	return d, nil
}

// SetChunkSize tunes the gather transport: how many matches a shard
// accumulates before handing them to the coordinator in one channel
// operation. Values below 1 select DefaultChunkSize. Safe to call
// concurrently with queries; in-flight gathers keep the size they
// started with. The chunk size never affects results — only the number
// of channel synchronizations and the work a shard may compute past the
// termination threshold (at most one chunk in flight plus one buffered).
func (d *DB) SetChunkSize(n int) {
	if n < 1 {
		n = DefaultChunkSize
	}
	d.chunk.Store(int32(n))
}

// ChunkSize returns the current gather transport chunk size.
func (d *DB) ChunkSize() int { return int(d.chunk.Load()) }

// NumShards returns n.
func (d *DB) NumShards() int { return d.n }

// PartitionerName returns the name of the partitioner that built d.
func (d *DB) PartitionerName() string { return d.name }

// ShardSize returns how many vertices shard i owns.
func (d *DB) ShardSize(i int) int { return d.sizes[i] }

// Merged returns how many matches shard i has contributed to TopK merges.
func (d *DB) Merged(i int) int64 { return d.merged[i].Load() }

// ShardCounters returns shard i's private simulated-I/O counters.
func (d *DB) ShardCounters(i int) store.Counters { return d.stores[i].Counters() }

// Counters returns the shards' I/O counters summed.
func (d *DB) Counters() store.Counters {
	var total store.Counters
	for _, s := range d.stores {
		c := s.Counters()
		total.BlocksRead += c.BlocksRead
		total.EntriesRead += c.EntriesRead
		total.TableEntriesRead += c.TableEntriesRead
		total.TablesRead += c.TablesRead
		total.TableHits += c.TableHits
	}
	return total
}

// gather is the chunked scatter half shared by TopK and Stream: one
// producer goroutine per shard runs Topk-EN over the shard's replica
// (root-filtered to owned vertices, composed with any caller filter) and
// emits score-ordered []*lazy.Match chunks into a bounded channel — one
// channel synchronization per chunk instead of per match, which is what
// removes the per-match hand-off overhead the pre-chunk transport paid.
// The coordinator side keeps, per shard, the current chunk and a cursor;
// the head (first unconsumed match) is the best score the shard can
// still produce, so threshold reasoning is unchanged from the per-match
// transport and results stay byte-identical for every chunk size.
type gather struct {
	d     *DB
	done  chan struct{}
	chans []chan []*lazy.Match
	heads [][]*lazy.Match // heads[i] = shard i's current chunk, nil once exhausted
	cur   []int           // cur[i] = first unconsumed index into heads[i]
	hq    *heap.Indexed   // shard index keyed by head score
	merge *obs.Span       // "shard_merge" span covering the gather's lifetime; nil untraced
}

// newGather starts the per-shard producers. chunk is the transport chunk
// size; base carries caller options (RootFilter is composed with shard
// ownership, never replaced by it).
func (d *DB) newGather(t *query.Tree, base lazy.Options, chunk int) *gather {
	if chunk < 1 {
		chunk = d.ChunkSize()
	}
	g := &gather{
		d:     d,
		done:  make(chan struct{}),
		chans: make([]chan []*lazy.Match, d.n),
		heads: make([][]*lazy.Match, d.n),
		cur:   make([]int, d.n),
		hq:    heap.NewIndexed(d.n),
		merge: base.Trace.StartChild("shard_merge"),
	}
	g.merge.SetAttr("shards", d.n)
	for i := 0; i < d.n; i++ {
		ch := make(chan []*lazy.Match, chunkBuffer)
		g.chans[i] = ch
		// The per-shard span is created here (attachment to the merge span
		// is not goroutine-start ordered) and ended by the producer when it
		// exhausts or is released.
		ssp := g.merge.StartChild("shard_enumerate")
		ssp.SetAttr("shard", i)
		go func(shardID int32, ch chan<- []*lazy.Match, ssp *obs.Span) {
			defer close(ch)
			defer ssp.End()
			opt := base
			opt.Trace = ssp
			caller := base.RootFilter
			opt.RootFilter = func(v int32) bool {
				return d.assign[v] == shardID && (caller == nil || caller(v))
			}
			e := lazy.New(d.stores[shardID], t, opt)
			for {
				buf := make([]*lazy.Match, chunk)
				n := e.NextBatch(buf)
				if n > 0 {
					select {
					case ch <- buf[:n:n]:
					case <-g.done:
						return
					}
				}
				if n < chunk {
					return // NextBatch ran dry: the shard is exhausted
				}
			}
		}(int32(i), ch, ssp)
	}
	return g
}

// init blocks for every shard's first chunk and seeds the head heap.
func (g *gather) init() {
	for i, ch := range g.chans {
		if c := <-ch; c != nil { // nil once a shard closes exhausted
			g.heads[i] = c
			g.hq.Push(i, c[0].Score)
		}
	}
}

// take consumes shard i's head match, advancing to the next match in the
// chunk or blocking for the shard's next chunk, and re-keys the heap.
func (g *gather) take(i int) *lazy.Match {
	m := g.heads[i][g.cur[i]]
	g.d.merged[i].Add(1)
	g.cur[i]++
	if g.cur[i] < len(g.heads[i]) {
		g.hq.Update(i, g.heads[i][g.cur[i]].Score)
		return m
	}
	if c := <-g.chans[i]; c != nil {
		g.heads[i], g.cur[i] = c, 0
		g.hq.Update(i, c[0].Score)
	} else {
		g.heads[i] = nil
		g.hq.Remove(i)
	}
	return m
}

// stop releases the producers; they exit at their next send (or already
// have, if exhausted). Idempotence is the caller's concern.
func (g *gather) stop() {
	close(g.done)
	g.merge.End()
}

// TopK scatter-gathers the k best matches of t across the shards. Every
// shard enumerates its slice of the match space concurrently (Topk-EN
// with a root filter) into a bounded channel of score-ordered chunks;
// the coordinator k-way merges by head score and stops pulling from a
// shard once its head — the best score the shard can still produce —
// cannot beat the current k-th result. Equal scores are ordered by node
// bindings, so for a fixed store contents the result is byte-identical
// for every shard count, partitioner, and chunk size: all matches
// scoring strictly below the k-th score are always included, and ties at
// the k-th score are broken lexicographically.
func (d *DB) TopK(t *query.Tree, k int) []*lazy.Match {
	return d.TopKOpts(t, k, lazy.Options{})
}

// TopKOpts is TopK with caller-supplied enumeration options; a caller
// RootFilter composes with (restricts within) shard ownership.
//
// A single-shard DB skips the gather transport: the lone shard owns
// every vertex, so the coordinator pulls the enumerator directly — no
// producer goroutine, no channel synchronizations, and no run-ahead
// past the termination threshold. Run-ahead is what makes the transport
// expensive at n=1: the producer computes up to two chunks the merge
// never consumes, and those late matches are the costly ones because
// the enumerator's per-match cost grows with how many matches it has
// emitted. The output is byte-identical either way (GatherTopK forces
// the transport; benchmarks and tests compare the two).
func (d *DB) TopKOpts(t *query.Tree, k int, base lazy.Options) []*lazy.Match {
	if k <= 0 {
		return nil
	}
	if d.n == 1 {
		return d.topKInline(t, k, base)
	}
	return d.GatherTopK(t, k, base)
}

// topKInline answers TopK on a single-shard DB straight off the
// enumerator. Shard 0 owns every vertex, so no ownership filter is
// composed: the enumeration is exactly the unsharded one, and
// lazy.DrainTopK applies the same merge semantics GatherTopK does —
// gather everything at or below the k-th score, compact periodically,
// canonically sort — so the result is byte-identical to the transport's
// for every chunk size.
func (d *DB) topKInline(t *query.Tree, k int, base lazy.Options) []*lazy.Match {
	out, consumed := lazy.DrainTopK(lazy.New(d.stores[0], t, base), k)
	d.merged[0].Add(int64(consumed))
	return out
}

// GatherTopK is TopKOpts forced through the chunked scatter-gather
// transport regardless of shard count. Production callers want TopK /
// TopKOpts, which at one shard answer inline; this entry point exists
// for the benchmarks and tests that quantify the transport itself (the
// BENCH_topk.json chunk-size sweep measures it at shards=1 to record
// what the inline fast path saves).
func (d *DB) GatherTopK(t *query.Tree, k int, base lazy.Options) []*lazy.Match {
	if k <= 0 {
		return nil
	}
	// Chunks larger than k would only make shards compute matches the
	// merge can never need before its first threshold check.
	chunk := d.ChunkSize()
	if chunk > k {
		chunk = k
	}
	g := d.newGather(t, base, chunk)
	defer g.stop() // releases producers still buffering past the threshold
	g.init()
	// Gather in global score order; heads live in an indexed min-heap, so
	// each merge step costs O(log shards). Ties between shard heads may
	// pop in any order; the final canonical sort makes the output
	// independent of that order because every head at or below the k-th
	// score is drained regardless. out stays non-decreasing by score, so
	// out[k-1] is the current k-th result; a head strictly above it can
	// never contribute (per-shard emission is sorted), while heads equal
	// to it are drained so the tie-breaking below sees the whole tie
	// group. Draining compacts periodically — sort, keep the k smallest —
	// so a huge equal-score group (uniform-weight graphs tie
	// astronomically many matches) costs O(k) memory, not one entry per
	// tie: a compacted-away match is beaten by k gathered matches and no
	// later arrival can resurrect it.
	var out []*lazy.Match
	compactAt := 2*k + 64
	for g.hq.Len() > 0 {
		best, score := g.hq.Peek()
		if len(out) >= k && score > out[k-1].Score {
			break // threshold: no shard can still beat the k-th result
		}
		out = append(out, g.take(best))
		if len(out) >= compactAt {
			out = keepSmallest(out, k)
		}
	}
	// Canonical tie order: equal scores sort by node bindings. Everything
	// below the k-th score was gathered in full and the k-th score's tie
	// group was drained (compaction only ever drops matches already
	// beaten by k others), so the first k are a pure function of the
	// match space — independent of sharding.
	return keepSmallest(out, k)
}

// Stream incrementally enumerates t's matches across the shards in the
// same canonical order TopK returns: non-decreasing score, equal scores
// by node bindings. It is the pull-based form of the scatter-gather —
// consumers that do not know k up front drain exactly as far as they
// need, and the producers stay at most one chunk (plus one buffered)
// ahead of what was consumed.
//
// Canonical tie order requires seeing a whole equal-score group before
// emitting any of it (another shard may still hold a lexicographically
// smaller tie), so the stream buffers one tie group at a time. Unlike
// TopK, which compacts to O(k), a streaming consumer has no k to compact
// to: memory is O(largest tie group drained). Close releases the
// producers; callers that do not drain to exhaustion must call it.
//
// Like TopK, a single-shard DB streams straight off the enumerator: no
// producer goroutine, no channel, and run-ahead of a single match (the
// lookahead that detects the end of a tie group) instead of up to two
// transport chunks. The emitted sequence is identical either way.
func (d *DB) Stream(t *query.Tree, base lazy.Options) *Stream {
	if d.n == 1 {
		return &Stream{d: d, t: t, opt: base}
	}
	return &Stream{g: d.newGather(t, base, d.ChunkSize())}
}

// Stream is an incremental scatter-gather enumeration; see DB.Stream.
type Stream struct {
	g *gather // multi-shard transport; nil for the inline form
	// Inline single-shard form: the canonical stream is built on first
	// Next (so constructing a Stream never blocks on table loading).
	d        *DB
	t        *query.Tree
	opt      lazy.Options
	cs       *lazy.CanonicalStream
	consumed int64 // cs.Consumed() already credited to merged[0]

	tie    []*lazy.Match // current equal-score group, canonically sorted
	tiePos int
	inited bool
	closed bool
}

// Next returns the next match in canonical order; ok is false when the
// match space is exhausted or the stream is closed.
func (s *Stream) Next() (*lazy.Match, bool) {
	if s.tiePos < len(s.tie) {
		m := s.tie[s.tiePos]
		s.tiePos++
		return m, true
	}
	if s.closed {
		return nil, false
	}
	if s.g == nil {
		return s.nextInline()
	}
	if !s.inited {
		// Deferred past the constructor so building a Stream never blocks;
		// the first Next waits for every shard's opening chunk.
		s.inited = true
		s.g.init()
	}
	if s.g.hq.Len() == 0 {
		return nil, false
	}
	// Drain the entire tie group at the current minimum score: per-shard
	// emission is sorted, so once every head exceeds the score no shard
	// can add to the group, and sorting it fixes the canonical order.
	_, score := s.g.hq.Peek()
	group := s.tie[:0]
	for s.g.hq.Len() > 0 {
		best, sc := s.g.hq.Peek()
		if sc != score {
			break
		}
		group = append(group, s.g.take(best))
	}
	sort.Slice(group, func(i, j int) bool { return lessMatch(group[i], group[j]) })
	s.tie, s.tiePos = group, 1
	return group[0], true
}

// nextInline pulls from the single shard's canonical stream, crediting
// newly consumed matches to the merged counter as they are drained.
func (s *Stream) nextInline() (*lazy.Match, bool) {
	if !s.inited {
		s.inited = true
		s.cs = lazy.NewCanonicalStream(lazy.New(s.d.stores[0], s.t, s.opt))
	}
	m, ok := s.cs.Next()
	if delta := s.cs.Consumed() - s.consumed; delta > 0 {
		s.consumed += delta
		s.d.merged[0].Add(delta)
	}
	return m, ok
}

// Close stops the per-shard producers (the inline single-shard form has
// none). Idempotent; in the gather form, matches already buffered in
// the current tie group remain drainable.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.g != nil {
		s.g.stop()
	}
}

// keepSmallest sorts ms canonically and truncates to the k smallest.
// Sorting keeps ms non-decreasing by score, which the merge loop's
// threshold test relies on after a compaction.
func keepSmallest(ms []*lazy.Match, k int) []*lazy.Match {
	return lazy.Canonicalize(ms, k)
}

// lessMatch is the canonical match order; see lazy.Less.
func lessMatch(a, b *lazy.Match) bool { return lazy.Less(a, b) }
