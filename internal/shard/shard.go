package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ktpm/internal/graph"
	"ktpm/internal/heap"
	"ktpm/internal/lazy"
	"ktpm/internal/query"
	"ktpm/internal/store"
)

// Partitioner assigns every data-graph vertex to one of n shards, fixing
// which shard enumerates the matches rooted at that vertex.
type Partitioner interface {
	// Partition returns the shard assignment: out[v] in [0, n) for every
	// node v of g. Implementations must be deterministic — the assignment
	// is part of the database's identity, and /stats reports it.
	Partition(g *graph.Graph, n int) []int32
	// Name identifies the strategy in flags, logs, and /stats.
	Name() string
}

// Hash spreads vertices by a multiplicative hash of their IDs. It ignores
// labels: total vertex counts balance well, but a rare label's candidates
// can clump onto few shards.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	for v := range out {
		// Knuth's multiplicative hash: decorrelates the dense sequential
		// IDs from the modulus so contiguous generator output (which often
		// correlates with topology) spreads across shards.
		h := uint32(v) * 2654435761
		out[v] = int32(h % uint32(n))
	}
	return out
}

// LabelBalanced deals each label's vertices round-robin across shards, so
// the root-candidate set of any query label splits near-evenly (counts
// differ by at most one) regardless of label skew. This is the
// label-aware strategy: the scatter-gather's critical path is the slowest
// shard, and per-label balance bounds it for every possible root label.
type LabelBalanced struct{}

// Name implements Partitioner.
func (LabelBalanced) Name() string { return "label" }

// Partition implements Partitioner.
func (LabelBalanced) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	next := make([]int32, g.NumLabels())
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		l := g.Label(v)
		out[v] = next[l]
		next[l] = (next[l] + 1) % int32(n)
	}
	return out
}

// Parse resolves the flag spelling of a partitioner name ("hash",
// "label", case-insensitive); ok is false for unknown names, including
// the empty string — callers that want a default decide it themselves.
func Parse(name string) (Partitioner, bool) {
	switch strings.ToLower(name) {
	case "hash":
		return Hash{}, true
	case "label":
		return LabelBalanced{}, true
	}
	return nil, false
}

// mergeBuffer bounds how many matches a shard may compute ahead of the
// coordinator. Small keeps abandoned work bounded once the threshold
// stops a shard; large would only help if match materialization were
// slower than the merge, which it is not.
const mergeBuffer = 32

// DB is a root-partitioned view over one prepared closure: n shards, each
// holding a private store replica and the set of vertices it owns.
type DB struct {
	n      int
	name   string
	assign []int32        // assign[v] = shard owning vertex v
	sizes  []int          // vertices per shard
	stores []*store.Store // per-shard replicas of the base store
	merged []atomic.Int64 // matches each shard contributed to gathers
}

// New partitions base's graph into n shards using p. The base store is
// left untouched (its caller may keep serving unsharded queries from it);
// each shard receives a replica sharing the base's derived-data plane, so
// summary tables and wildcard merges are derived once process-wide no
// matter the shard count, while I/O counters stay per shard.
func New(base *store.Store, n int, p Partitioner) (*DB, error) {
	return build(base, n, p, (*store.Store).Replica)
}

// NewDetached is New with every shard on a private derived-data plane:
// each shard re-derives the tables it touches, the pre-plane behavior.
// Kept for benchmarks quantifying the shared plane; production callers
// want New.
func NewDetached(base *store.Store, n int, p Partitioner) (*DB, error) {
	return build(base, n, p, (*store.Store).PrivateReplica)
}

func build(base *store.Store, n int, p Partitioner, replica func(*store.Store) *store.Store) (*DB, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", n)
	}
	g := base.Graph()
	assign := p.Partition(g, n)
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("shard: partitioner %s assigned %d of %d vertices", p.Name(), len(assign), g.NumNodes())
	}
	d := &DB{
		n:      n,
		name:   p.Name(),
		assign: assign,
		sizes:  make([]int, n),
		stores: make([]*store.Store, n),
		merged: make([]atomic.Int64, n),
	}
	for v, s := range assign {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("shard: partitioner %s put vertex %d in shard %d of %d", p.Name(), v, s, n)
		}
		d.sizes[s]++
	}
	for i := 0; i < n; i++ {
		d.stores[i] = replica(base)
	}
	return d, nil
}

// NumShards returns n.
func (d *DB) NumShards() int { return d.n }

// PartitionerName returns the name of the partitioner that built d.
func (d *DB) PartitionerName() string { return d.name }

// ShardSize returns how many vertices shard i owns.
func (d *DB) ShardSize(i int) int { return d.sizes[i] }

// Merged returns how many matches shard i has contributed to TopK merges.
func (d *DB) Merged(i int) int64 { return d.merged[i].Load() }

// ShardCounters returns shard i's private simulated-I/O counters.
func (d *DB) ShardCounters(i int) store.Counters { return d.stores[i].Counters() }

// Counters returns the shards' I/O counters summed.
func (d *DB) Counters() store.Counters {
	var total store.Counters
	for _, s := range d.stores {
		c := s.Counters()
		total.BlocksRead += c.BlocksRead
		total.EntriesRead += c.EntriesRead
		total.TableEntriesRead += c.TableEntriesRead
		total.TablesRead += c.TablesRead
		total.TableHits += c.TableHits
	}
	return total
}

// TopK scatter-gathers the k best matches of t across the shards. Every
// shard enumerates its slice of the match space concurrently (Topk-EN
// with a root filter) into a bounded channel; the coordinator k-way
// merges by score and stops pulling from a shard once its head — the best
// score the shard can still produce — cannot beat the current k-th
// result. Equal scores are ordered by node bindings, so for a fixed store
// contents the result is byte-identical for every shard count and
// partitioner: all matches scoring strictly below the k-th score are
// always included, and ties at the k-th score are broken lexicographically.
func (d *DB) TopK(t *query.Tree, k int) []*lazy.Match {
	if k <= 0 {
		return nil
	}
	done := make(chan struct{})
	defer close(done) // stops producers still buffering past the threshold
	chans := make([]chan *lazy.Match, d.n)
	for i := 0; i < d.n; i++ {
		ch := make(chan *lazy.Match, mergeBuffer)
		chans[i] = ch
		go func(shardID int32, ch chan<- *lazy.Match) {
			defer close(ch)
			e := lazy.New(d.stores[shardID], t, lazy.Options{
				RootFilter: func(v int32) bool { return d.assign[v] == shardID },
			})
			for {
				m, ok := e.Next()
				if !ok {
					return
				}
				select {
				case ch <- m:
				case <-done:
					return
				}
			}
		}(int32(i), ch)
	}
	// Shard heads live in an indexed min-heap keyed by head score, so each
	// merge step costs O(log shards) instead of a linear scan over every
	// shard — the difference matters once shard counts grow past a
	// handful. Ties between shard heads may pop in any order; the final
	// canonical sort makes the output independent of that order because
	// every head at or below the k-th score is drained regardless.
	heads := make([]*lazy.Match, d.n)
	hq := heap.NewIndexed(d.n)
	for i, ch := range chans {
		if m := <-ch; m != nil { // nil once a shard closes exhausted
			heads[i] = m
			hq.Push(i, m.Score)
		}
	}
	// Gather in global score order. out stays non-decreasing by score, so
	// out[k-1] is the current k-th result; a head strictly above it can
	// never contribute (per-shard emission is sorted), while heads equal
	// to it are drained so the tie-breaking below sees the whole tie
	// group. Draining compacts periodically — sort, keep the k smallest —
	// so a huge equal-score group (uniform-weight graphs tie
	// astronomically many matches) costs O(k) memory, not one entry per
	// tie: a compacted-away match is beaten by k gathered matches and no
	// later arrival can resurrect it.
	var out []*lazy.Match
	compactAt := 2*k + 64
	for hq.Len() > 0 {
		best, score := hq.Peek()
		if len(out) >= k && score > out[k-1].Score {
			break // threshold: no shard can still beat the k-th result
		}
		out = append(out, heads[best])
		d.merged[best].Add(1)
		if m := <-chans[best]; m != nil {
			heads[best] = m
			hq.Update(best, m.Score)
		} else {
			heads[best] = nil
			hq.Remove(best)
		}
		if len(out) >= compactAt {
			out = keepSmallest(out, k)
		}
	}
	// Canonical tie order: equal scores sort by node bindings. Everything
	// below the k-th score was gathered in full and the k-th score's tie
	// group was drained (compaction only ever drops matches already
	// beaten by k others), so the first k are a pure function of the
	// match space — independent of sharding.
	return keepSmallest(out, k)
}

// keepSmallest sorts ms by lessMatch and truncates to the k smallest.
// Sorting keeps ms non-decreasing by score, which the merge loop's
// threshold test relies on after a compaction.
func keepSmallest(ms []*lazy.Match, k int) []*lazy.Match {
	sort.Slice(ms, func(i, j int) bool { return lessMatch(ms[i], ms[j]) })
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms
}

// lessMatch orders matches by (score, node bindings lexicographic); two
// distinct matches always differ in some binding, so the order is total.
func lessMatch(a, b *lazy.Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return false
}
