// Package shard partitions the match space of one prepared database
// across N shards and scatter-gathers top-k queries over them.
//
// # Partitioning axis
//
// Every tree-pattern match binds the query root to exactly one data node,
// so assigning each data-graph vertex to one shard (the Partitioner
// interface) induces a partition of the match space itself: shard i owns
// precisely the matches whose root binding it owns. Restricting the lazy
// enumerator with a root filter (lazy.Options.RootFilter) therefore makes
// the shards' emissions disjoint, each sorted by score, and their union
// exactly the unrestricted enumeration — the invariant the merge relies
// on. Candidates for non-root query positions are never restricted; a
// match rooted in shard i may bind descendants to vertices owned by any
// shard.
//
// # Per-shard stores
//
// The transitive closure is computed once and shared read-only. Each
// shard owns a store.Replica: the immutable closure layout is shared, but
// derived-table caches, the wildcard-merge cache, and the simulated-I/O
// counters are private, so concurrent per-shard enumerations neither
// contend on one cache mutex nor mix their accounting. /stats reports the
// per-shard counters individually and in aggregate.
//
// # Scatter-gather merge
//
// TopK runs one enumerator goroutine per shard, each feeding a bounded
// channel (the streaming half: a shard computes at most a small buffer
// ahead of what the coordinator has consumed). The coordinator repeatedly
// takes the smallest head — a k-way merge — and stops pulling from a
// shard once that shard's best possible remaining score cannot beat the
// current k-th result; because per-shard emission is sorted, a shard's
// head score is exactly that best possible remaining score, so the
// threshold test is the paper's early-termination argument lifted from
// block loading to shard gathering. After the k-th score s_k is known the
// coordinator drains every head still equal to s_k and orders equal
// scores by their node bindings, which makes the returned slice a pure
// function of the match space and k: byte-identical across shard counts
// and partitioners.
package shard
