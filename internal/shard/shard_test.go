package shard

import (
	"testing"

	"ktpm/internal/closure"
	"ktpm/internal/gen"
	"ktpm/internal/graph"
	"ktpm/internal/lazy"
	"ktpm/internal/query"
	"ktpm/internal/store"
)

// chain builds a tiny a->b->c graph with two b nodes, so "a(b)" has
// matches rooted at a single a and bound to either b.
func chainStore(t *testing.T) (*store.Store, *query.Tree) {
	t.Helper()
	gb := graph.NewBuilder()
	a := gb.AddNode("a")
	b1 := gb.AddNode("b")
	b2 := gb.AddNode("b")
	c := gb.AddNode("c")
	gb.AddEdge(a, b1)
	gb.AddEdge(a, b2)
	gb.AddEdge(b1, c)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(closure.Compute(g, closure.Options{}), 0)
	qb := query.NewBuilder(g.Labels)
	root := qb.Root("a")
	qb.AddChild(root, "b", query.Descendant)
	tree, err := qb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st, tree
}

func TestTopKEdgeCases(t *testing.T) {
	st, tree := chainStore(t)
	d, err := New(st, 3, Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TopK(tree, 0); got != nil {
		t.Fatalf("TopK(k=0) = %v, want nil", got)
	}
	ms := d.TopK(tree, 10)
	if len(ms) != 2 {
		t.Fatalf("TopK returned %d matches, want 2", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score < ms[i-1].Score {
			t.Fatalf("scores regressed: %d after %d", ms[i].Score, ms[i-1].Score)
		}
	}
	// With every vertex in one shard of three, two shards emit nothing;
	// the merge must still terminate and count contributions coherently.
	var merged int64
	for i := 0; i < d.NumShards(); i++ {
		merged += d.Merged(i)
	}
	if merged != 2 {
		t.Fatalf("merged contributions sum to %d, want 2", merged)
	}
	sizes := 0
	for i := 0; i < d.NumShards(); i++ {
		sizes += d.ShardSize(i)
	}
	if sizes != 4 {
		t.Fatalf("shard sizes sum to %d, want 4", sizes)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	st, _ := chainStore(t)
	if _, err := New(st, 0, Hash{}); err == nil {
		t.Fatal("New with 0 shards succeeded")
	}
	if _, err := New(st, 2, badPartitioner{}); err == nil {
		t.Fatal("New accepted an out-of-range assignment")
	}
	if _, err := New(st, 2, shortPartitioner{}); err == nil {
		t.Fatal("New accepted a short assignment")
	}
}

type badPartitioner struct{}

func (badPartitioner) Name() string { return "bad" }
func (badPartitioner) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	out[0] = int32(n) // out of range
	return out
}

type shortPartitioner struct{}

func (shortPartitioner) Name() string { return "short" }
func (shortPartitioner) Partition(g *graph.Graph, n int) []int32 {
	return make([]int32, g.NumNodes()-1)
}

// TestInlineMatchesGather pins the single-shard fast path to the
// transport it bypasses: on one DB, TopK (inline) and GatherTopK (forced
// through the chunked scatter-gather) must return byte-identical match
// slices for every k and chunk size, and Stream (inline at one shard)
// drained to k must agree with both. Uniform weights (MaxWeight 1) make
// tie groups enormous relative to k, so the canonical tie-breaking of
// both paths is exercised, not just score order.
func TestInlineMatchesGather(t *testing.T) {
	for _, maxw := range []int32{1, 8} {
		g := gen.PowerLaw(gen.PowerLawConfig{
			Nodes: 300, AvgOutDegree: 4, Labels: 12,
			Window: 30, Communities: 4, MaxWeight: maxw, Seed: 7,
		})
		qs, err := gen.QuerySet(g, 3, 6, false, 99)
		if err != nil {
			t.Fatal(err)
		}
		st := store.New(closure.Compute(g, closure.Options{}), 0)
		d, err := New(st, 1, LabelBalanced{})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			for _, k := range []int{1, 7, 60} {
				want := d.TopK(q, k)
				for _, chunk := range []int{1, 8, 64} {
					d.SetChunkSize(chunk)
					got := d.GatherTopK(q, k, lazy.Options{})
					assertSameMatches(t, want, got, "maxw=%d q=%d k=%d chunk=%d gather", maxw, qi, k, chunk)
				}
				s := d.Stream(q, lazy.Options{})
				var streamed []*lazy.Match
				for len(streamed) < k {
					m, ok := s.Next()
					if !ok {
						break
					}
					streamed = append(streamed, m)
				}
				s.Close()
				assertSameMatches(t, want, streamed, "maxw=%d q=%d k=%d stream", maxw, qi, k)
			}
		}
	}
}

func assertSameMatches(t *testing.T, want, got []*lazy.Match, format string, args ...any) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf(format+": %d matches, want %d", append(args, len(got), len(want))...)
	}
	for i := range want {
		if want[i].Score != got[i].Score {
			t.Fatalf(format+": match %d score %d, want %d", append(args, i, got[i].Score, want[i].Score)...)
		}
		for p := range want[i].Nodes {
			if want[i].Nodes[p] != got[i].Nodes[p] {
				t.Fatalf(format+": match %d binds %v, want %v", append(args, i, got[i].Nodes, want[i].Nodes)...)
			}
		}
	}
}

func TestParse(t *testing.T) {
	if p, ok := Parse("Hash"); !ok || p.Name() != "hash" {
		t.Fatalf("Parse(Hash) = %v, %v", p, ok)
	}
	if p, ok := Parse("label"); !ok || p.Name() != "label" {
		t.Fatalf("Parse(label) = %v, %v", p, ok)
	}
	for _, bad := range []string{"", "roundrobin"} {
		if _, ok := Parse(bad); ok {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}
