package shard

import (
	"testing"

	"ktpm/internal/closure"
	"ktpm/internal/graph"
	"ktpm/internal/query"
	"ktpm/internal/store"
)

// chain builds a tiny a->b->c graph with two b nodes, so "a(b)" has
// matches rooted at a single a and bound to either b.
func chainStore(t *testing.T) (*store.Store, *query.Tree) {
	t.Helper()
	gb := graph.NewBuilder()
	a := gb.AddNode("a")
	b1 := gb.AddNode("b")
	b2 := gb.AddNode("b")
	c := gb.AddNode("c")
	gb.AddEdge(a, b1)
	gb.AddEdge(a, b2)
	gb.AddEdge(b1, c)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(closure.Compute(g, closure.Options{}), 0)
	qb := query.NewBuilder(g.Labels)
	root := qb.Root("a")
	qb.AddChild(root, "b", query.Descendant)
	tree, err := qb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st, tree
}

func TestTopKEdgeCases(t *testing.T) {
	st, tree := chainStore(t)
	d, err := New(st, 3, Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TopK(tree, 0); got != nil {
		t.Fatalf("TopK(k=0) = %v, want nil", got)
	}
	ms := d.TopK(tree, 10)
	if len(ms) != 2 {
		t.Fatalf("TopK returned %d matches, want 2", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score < ms[i-1].Score {
			t.Fatalf("scores regressed: %d after %d", ms[i].Score, ms[i-1].Score)
		}
	}
	// With every vertex in one shard of three, two shards emit nothing;
	// the merge must still terminate and count contributions coherently.
	var merged int64
	for i := 0; i < d.NumShards(); i++ {
		merged += d.Merged(i)
	}
	if merged != 2 {
		t.Fatalf("merged contributions sum to %d, want 2", merged)
	}
	sizes := 0
	for i := 0; i < d.NumShards(); i++ {
		sizes += d.ShardSize(i)
	}
	if sizes != 4 {
		t.Fatalf("shard sizes sum to %d, want 4", sizes)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	st, _ := chainStore(t)
	if _, err := New(st, 0, Hash{}); err == nil {
		t.Fatal("New with 0 shards succeeded")
	}
	if _, err := New(st, 2, badPartitioner{}); err == nil {
		t.Fatal("New accepted an out-of-range assignment")
	}
	if _, err := New(st, 2, shortPartitioner{}); err == nil {
		t.Fatal("New accepted a short assignment")
	}
}

type badPartitioner struct{}

func (badPartitioner) Name() string { return "bad" }
func (badPartitioner) Partition(g *graph.Graph, n int) []int32 {
	out := make([]int32, g.NumNodes())
	out[0] = int32(n) // out of range
	return out
}

type shortPartitioner struct{}

func (shortPartitioner) Name() string { return "short" }
func (shortPartitioner) Partition(g *graph.Graph, n int) []int32 {
	return make([]int32, g.NumNodes()-1)
}

func TestParse(t *testing.T) {
	if p, ok := Parse("Hash"); !ok || p.Name() != "hash" {
		t.Fatalf("Parse(Hash) = %v, %v", p, ok)
	}
	if p, ok := Parse("label"); !ok || p.Name() != "label" {
		t.Fatalf("Parse(label) = %v, %v", p, ok)
	}
	for _, bad := range []string{"", "roundrobin"} {
		if _, ok := Parse(bad); ok {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}
