package store

import (
	"reflect"
	"testing"

	"ktpm/internal/closure"
	"ktpm/internal/gen"
	"ktpm/internal/graph"
	"ktpm/internal/label"
)

// closureOf computes the full closure of g.
func closureOf(t *testing.T, g *graph.Graph) *closure.Closure {
	t.Helper()
	return closure.Compute(g, closure.Options{})
}

func TestFilterDistGE(t *testing.T) {
	cases := []struct {
		dist []int32
		thr  int32
		want int
	}{
		{nil, 5, 0},
		{[]int32{1, 2, 3}, 0, 0},
		{[]int32{1, 2, 3}, 2, 1},
		{[]int32{1, 2, 3}, 3, 2},
		{[]int32{1, 2, 3}, 4, 3},
		{[]int32{2, 2, 2}, 2, 0},
		{[]int32{1, 1, 5, 5}, 5, 2},
	}
	for _, tc := range cases {
		if got := FilterDistGE(tc.dist, tc.thr); got != tc.want {
			t.Errorf("FilterDistGE(%v, %d) = %d, want %d", tc.dist, tc.thr, got, tc.want)
		}
	}
}

func TestFirstTrue(t *testing.T) {
	if got := firstTrue(nil); got != -1 {
		t.Errorf("firstTrue(nil) = %d, want -1", got)
	}
	if got := firstTrue([]bool{false, false, true, true}); got != 2 {
		t.Errorf("firstTrue = %d, want 2", got)
	}
	if got := firstTrue([]bool{false, false}); got != -1 {
		t.Errorf("firstTrue = %d, want -1", got)
	}
}

// drainList pulls every block of (alpha, v) through a fresh handle,
// concatenated in order.
func drainList(s *Store, alpha, v int32) []InEdge {
	lh := s.OpenList(alpha, v)
	var all []InEdge
	for i := 0; ; i++ {
		blk, last := lh.Block(i)
		all = append(all, blk...)
		if last {
			return all
		}
	}
}

// TestColumnarMatchesRowMajor is the layout-identity property test: the
// columnar store must serve every list (per-label and wildcard-merged,
// block by block), every block-column view, and every derived D/E
// summary identically to the row-major layout over the same closure.
func TestColumnarMatchesRowMajor(t *testing.T) {
	g := gen.ErdosRenyi(48, 180, 5, 9)
	c := closureOf(t, g)
	for _, blockSize := range []int{1, 3, DefaultBlockSize} {
		row := New(c, blockSize)
		col := NewFromConfig(c, Config{BlockSize: blockSize, Columnar: true})
		col.MaterializeAll()
		if row.Columnar() || !col.Columnar() {
			t.Fatalf("Columnar() = %v/%v, want false/true", row.Columnar(), col.Columnar())
		}
		alphas := []int32{label.Wildcard}
		for a := int32(0); int(a) < g.NumLabels(); a++ {
			alphas = append(alphas, a)
		}
		for _, alpha := range alphas {
			for v := int32(0); int(v) < g.NumNodes(); v++ {
				want := drainList(row, alpha, v)
				got := drainList(col, alpha, v)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("bs=%d list (%d,%d): columnar %v, want %v", blockSize, alpha, v, got, want)
				}
				// The zero-copy block-column view must agree lane for
				// lane with the row blocks.
				lh := col.OpenList(alpha, v)
				var lanes []InEdge
				for i := 0; ; i++ {
					bc, last := lh.BlockCols(i)
					lanes = bc.appendInEdges(lanes)
					if last {
						break
					}
				}
				if !reflect.DeepEqual(lanes, want) {
					t.Fatalf("bs=%d cols (%d,%d): %v, want %v", blockSize, alpha, v, lanes, want)
				}
				if rn, cn := row.NumBlocks(alpha, v), col.NumBlocks(alpha, v); rn != cn {
					t.Fatalf("bs=%d NumBlocks(%d,%d) = %d, want %d", blockSize, alpha, v, cn, rn)
				}
			}
			// Derived summaries agree for every beta label and edge type.
			for beta := int32(0); int(beta) < g.NumLabels(); beta++ {
				for _, childOnly := range []bool{false, true} {
					wantD := row.LoadD(alpha, beta, childOnly)
					gotD := col.LoadD(alpha, beta, childOnly)
					if !reflect.DeepEqual(gotD, wantD) {
						t.Fatalf("bs=%d LoadD(%d,%d,%v): %v, want %v", blockSize, alpha, beta, childOnly, gotD, wantD)
					}
					wantE := row.LoadE(alpha, beta, childOnly)
					gotE := col.LoadE(alpha, beta, childOnly)
					if !reflect.DeepEqual(gotE, wantE) {
						t.Fatalf("bs=%d LoadE(%d,%d,%v): %v, want %v", blockSize, alpha, beta, childOnly, gotE, wantE)
					}
				}
			}
		}
	}
}

// TestColumnarWildcardMergeShared pins that the galloping wildcard merge
// publishes into the shared plane: the second resolution of the same
// merged list returns the identical backing columns, and replicas share
// them too.
func TestColumnarWildcardMergeShared(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 4, 9)
	c := closureOf(t, g)
	s := NewFromConfig(c, Config{BlockSize: 4, Columnar: true})
	s.MaterializeAll()
	var v int32 = -1
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if len(drainList(s, label.Wildcard, u)) > 1 {
			v = u
			break
		}
	}
	if v < 0 {
		t.Skip("no node with a multi-entry wildcard list")
	}
	a := s.inListCols(label.Wildcard, v, nil)
	b := s.inListCols(label.Wildcard, v, nil)
	if len(a.From) == 0 || &a.From[0] != &b.From[0] {
		t.Fatal("second wildcard resolution did not share the merged columns")
	}
	r := s.Replica()
	rc := r.inListCols(label.Wildcard, v, nil)
	if &rc.From[0] != &a.From[0] {
		t.Fatal("replica did not share the merged columns")
	}
	// A private replica re-derives into its own plane: equal contents,
	// different backing.
	p := s.PrivateReplica()
	pc := p.inListCols(label.Wildcard, v, nil)
	if !reflect.DeepEqual(pc, a) {
		t.Fatal("private replica merged columns differ in content")
	}
	if &pc.From[0] == &a.From[0] {
		t.Fatal("private replica shared the plane's merged columns")
	}
}

// TestOpenListResolvesOnce pins the satellite fix for the double table
// resolution in inList: a handle covering a multi-block list costs the
// same number of table reads as a single block load used to, and block
// reads are counted per block served, not per probe.
func TestOpenListResolvesOnce(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 1) // one entry per block: the a->d4 list has 2 blocks
	a, d := lbl(g, "a"), int32(4)
	s.ResetCounters()
	lh := s.OpenList(a, d)
	if lh.Len() != 2 || lh.NumBlocks() != 2 {
		t.Fatalf("handle len/blocks = %d/%d, want 2/2", lh.Len(), lh.NumBlocks())
	}
	if _, last := lh.Block(0); last {
		t.Fatal("block 0 reported last of 2")
	}
	if _, last := lh.Block(1); !last {
		t.Fatal("block 1 not last")
	}
	cnt := s.Counters()
	if cnt.BlocksRead != 2 || cnt.EntriesRead != 2 {
		t.Fatalf("counters after handle drain = %+v, want 2 blocks / 2 entries", cnt)
	}
}
