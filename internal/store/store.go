// Package store simulates the on-disk closure layout of Section 4.1 so the
// priority-based algorithms can be measured by how much of the run-time
// graph they actually retrieve.
//
// For every closure target node v and parent label α the incoming edges
// L^α_v are kept sorted by non-decreasing shortest distance and served in
// fixed-size blocks — the unit Algorithm 2's Expand loads (Line 10). Two
// summary tables are loaded wholesale at initialization:
//
//   - D^α_β: per target node v (l(v)=β), d^α_v — the minimum incoming
//     distance from label α; seeds the e_v term of lb(v).
//   - E^α_β: per source node v (l(v)=α), the single outgoing edge to label
//     β with minimum distance; seeds the child lists of leaf-edge parents.
//
// Every Load* call increments I/O counters (blocks, entries, tables); the
// experiment harness reads them to reproduce the paper's retrieved-edges
// and I/O-versus-CPU comparisons. Entries carry a Direct flag marking
// closure pairs realized by a single data-graph edge, the admission rule
// for '/' query edges; wildcard label arguments transparently merge tables.
package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"ktpm/internal/closure"
	"ktpm/internal/graph"
	"ktpm/internal/label"
)

// DefaultBlockSize is the number of incoming edges per block. Sixteen
// entries keeps the block small relative to typical incoming-list lengths
// at laptop scale, preserving the paper's regime where a list spans many
// blocks and the trigger can stop after a prefix.
const DefaultBlockSize = 16

// InEdge is one incoming closure edge to a fixed target node.
type InEdge struct {
	From int32
	Dist int32
	// Direct marks entries realized by a single data-graph edge.
	Direct bool
}

// DEntry is one D-table row: node V has minimum incoming distance Min
// (from the table's source label).
type DEntry struct {
	V   int32
	Min int32
}

// EEntry is one E-table row: the minimum-distance outgoing edge From→To.
type EEntry struct {
	From, To int32
	Dist     int32
	Direct   bool
}

// Counters accumulates simulated I/O. Block reads (the L^α_v incoming
// lists) are random accesses; table reads (the D/E summaries, loaded
// wholesale at initialization) are sequential scans. The experiment
// harness prices them differently when modeling disk cost.
type Counters struct {
	// BlocksRead counts random block reads from incoming lists.
	BlocksRead int64
	// EntriesRead counts every entry delivered (blocks plus tables).
	EntriesRead int64
	// TableEntriesRead counts entries delivered by LoadD/LoadE only.
	TableEntriesRead int64
	// TablesRead counts LoadD/LoadE calls.
	TablesRead int64
}

func (c *Counters) addBlock(entries int64) {
	atomic.AddInt64(&c.BlocksRead, 1)
	atomic.AddInt64(&c.EntriesRead, entries)
}

func (c *Counters) addTable(entries int64) {
	atomic.AddInt64(&c.TablesRead, 1)
	atomic.AddInt64(&c.EntriesRead, entries)
	atomic.AddInt64(&c.TableEntriesRead, entries)
}

// Store is a simulated disk image of one closure. The primary layout is
// immutable after New; derived-table caches and the wildcard merge cache
// populate lazily under a mutex and the counters update atomically, so a
// single Store safely serves concurrent queries.
type Store struct {
	g         *graph.Graph
	blockSize int

	// inLists[(alpha<<32)|v] = incoming edges to v from label alpha,
	// sorted by (Dist, From).
	inLists map[int64][]InEdge
	// byLabel[l] lists the nodes with label l, ascending, so table scans
	// touch only their own rows.
	byLabel [][]int32

	// mu guards the lazily populated caches below.
	mu sync.Mutex
	// mergedIn caches wildcard (all-label) incoming lists per node.
	mergedIn map[int32][]InEdge
	// dCache / eCache hold the derived summary tables; in the paper they
	// are materialized on disk next to the closure, so deriving them is
	// offline work paid once, not query time.
	dCache map[tableKey][]DEntry
	eCache map[tableKey][]EEntry

	counters Counters
}

type tableKey struct {
	alpha, beta int32
	childOnly   bool
}

func key(alpha, v int32) int64 { return int64(alpha)<<32 | int64(uint32(v)) }

// New lays out the closure c with the given block size (0 means
// DefaultBlockSize).
func New(c *closure.Closure, blockSize int) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	g := c.Graph()
	s := &Store{
		g:         g,
		blockSize: blockSize,
		inLists:   make(map[int64][]InEdge),
		mergedIn:  make(map[int32][]InEdge),
		byLabel:   make([][]int32, g.NumLabels()),
		dCache:    make(map[tableKey][]DEntry),
		eCache:    make(map[tableKey][]EEntry),
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		l := g.Label(v)
		s.byLabel[l] = append(s.byLabel[l], v)
	}
	// Direct-edge lookup: (u,v) -> weight of the direct edge.
	direct := make(map[int64]int32)
	g.Edges(func(e graph.Edge) bool {
		direct[key(e.From, e.To)] = e.Weight
		return true
	})
	c.Tables(func(alpha, beta int32, entries []closure.Entry) bool {
		// Closure tables are sorted by (To, Dist, From): contiguous runs
		// per target node are already in block order.
		for i := 0; i < len(entries); {
			j := i
			to := entries[i].To
			for j < len(entries) && entries[j].To == to {
				j++
			}
			lst := make([]InEdge, 0, j-i)
			for _, e := range entries[i:j] {
				w, ok := direct[key(e.From, e.To)]
				lst = append(lst, InEdge{
					From:   e.From,
					Dist:   e.Dist,
					Direct: ok && w == e.Dist,
				})
			}
			s.inLists[key(alpha, to)] = lst
			i = j
		}
		return true
	})
	return s
}

// Replica returns a store sharing s's immutable closure layout (incoming
// lists, label index, underlying graph) with private derived-table caches,
// wildcard-merge cache, and I/O counters. The shard package gives every
// shard its own replica so concurrent per-shard enumerations neither
// contend on one cache mutex nor mix their I/O accounting; the memory cost
// is the lazily re-derived summary tables, not the closure layout itself.
// The primary layout must already be complete, i.e. s must come from New
// (or be a replica itself).
func (s *Store) Replica() *Store {
	return &Store{
		g:         s.g,
		blockSize: s.blockSize,
		inLists:   s.inLists,
		byLabel:   s.byLabel,
		mergedIn:  make(map[int32][]InEdge),
		dCache:    make(map[tableKey][]DEntry),
		eCache:    make(map[tableKey][]EEntry),
	}
}

// Graph returns the underlying data graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// BlockSize returns the configured block size.
func (s *Store) BlockSize() int { return s.blockSize }

// Counters returns a snapshot of the accumulated I/O counters.
func (s *Store) Counters() Counters {
	return Counters{
		BlocksRead:       atomic.LoadInt64(&s.counters.BlocksRead),
		EntriesRead:      atomic.LoadInt64(&s.counters.EntriesRead),
		TableEntriesRead: atomic.LoadInt64(&s.counters.TableEntriesRead),
		TablesRead:       atomic.LoadInt64(&s.counters.TablesRead),
	}
}

// ResetCounters zeroes the I/O counters.
func (s *Store) ResetCounters() {
	atomic.StoreInt64(&s.counters.BlocksRead, 0)
	atomic.StoreInt64(&s.counters.EntriesRead, 0)
	atomic.StoreInt64(&s.counters.TableEntriesRead, 0)
	atomic.StoreInt64(&s.counters.TablesRead, 0)
}

// inList returns the full incoming list of v from label alpha, resolving
// the wildcard by merging all labels. No I/O is counted here; counting
// happens at block granularity in LoadBlock and at table granularity in
// LoadD/LoadE.
func (s *Store) inList(alpha, v int32) []InEdge {
	if alpha != label.Wildcard {
		return s.inLists[key(alpha, v)]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lst, ok := s.mergedIn[v]; ok {
		return lst
	}
	var merged []InEdge
	for a := int32(0); int(a) < s.g.NumLabels(); a++ {
		merged = append(merged, s.inLists[key(a, v)]...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].From < merged[j].From
	})
	s.mergedIn[v] = merged
	return merged
}

// NumBlocks returns how many blocks the incoming list L^alpha_v spans.
func (s *Store) NumBlocks(alpha, v int32) int {
	n := len(s.inList(alpha, v))
	return (n + s.blockSize - 1) / s.blockSize
}

// LoadBlock reads the idx-th block of L^alpha_v (alpha may be the
// wildcard), counting one block of I/O. last reports whether this was the
// final block; a list with no entries returns (nil, true) at idx 0.
func (s *Store) LoadBlock(alpha, v int32, idx int) (entries []InEdge, last bool) {
	lst := s.inList(alpha, v)
	lo := idx * s.blockSize
	if lo >= len(lst) {
		return nil, true
	}
	hi := lo + s.blockSize
	if hi > len(lst) {
		hi = len(lst)
	}
	s.counters.addBlock(int64(hi - lo))
	return lst[lo:hi], hi == len(lst)
}

// LoadD reads the D^alpha_beta table: per target node with label beta, the
// minimum incoming distance from label alpha. childOnly restricts to
// direct edges (the '/' variant); wildcard alpha/beta merge labels. The
// returned slice is the cached table; callers must not modify it.
func (s *Store) LoadD(alpha, beta int32, childOnly bool) []DEntry {
	key := tableKey{alpha, beta, childOnly}
	s.mu.Lock()
	out, ok := s.dCache[key]
	s.mu.Unlock()
	if !ok {
		s.forTargets(beta, func(v int32) {
			for _, e := range s.inList(alpha, v) {
				if childOnly && !e.Direct {
					continue
				}
				out = append(out, DEntry{V: v, Min: e.Dist})
				break // lists are distance-sorted
			}
		})
		s.mu.Lock()
		s.dCache[key] = out
		s.mu.Unlock()
	}
	s.counters.addTable(int64(len(out)))
	return out
}

// LoadE reads the E^alpha_beta table: per source node with label alpha,
// the single minimum-distance outgoing edge to label beta. childOnly
// restricts to direct edges; wildcard beta takes the minimum over all
// target labels. The returned slice is the cached table; callers must not
// modify it.
func (s *Store) LoadE(alpha, beta int32, childOnly bool) []EEntry {
	key := tableKey{alpha, beta, childOnly}
	s.mu.Lock()
	out, ok := s.eCache[key]
	s.mu.Unlock()
	if !ok {
		best := make(map[int32]EEntry)
		s.forTargets(beta, func(v int32) {
			for _, e := range s.inList(alpha, v) {
				if childOnly && !e.Direct {
					continue
				}
				cur, ok := best[e.From]
				if !ok || e.Dist < cur.Dist || (e.Dist == cur.Dist && v < cur.To) {
					best[e.From] = EEntry{From: e.From, To: v, Dist: e.Dist, Direct: e.Direct}
				}
			}
		})
		out = make([]EEntry, 0, len(best))
		for _, e := range best {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
		s.mu.Lock()
		s.eCache[key] = out
		s.mu.Unlock()
	}
	s.counters.addTable(int64(len(out)))
	return out
}

// forTargets invokes fn for every node whose label matches beta (all
// nodes for the wildcard), in ascending node order. Labels interned after
// the store was built (query-only labels) have no targets.
func (s *Store) forTargets(beta int32, fn func(v int32)) {
	if beta == label.Wildcard {
		for v := int32(0); int(v) < s.g.NumNodes(); v++ {
			fn(v)
		}
		return
	}
	if int(beta) >= len(s.byLabel) {
		return
	}
	for _, v := range s.byLabel[beta] {
		fn(v)
	}
}

// TotalEdges returns the total number of stored incoming entries — the
// m_R upper bound a full load would incur for a query touching every
// table.
func (s *Store) TotalEdges() int64 {
	var n int64
	for _, lst := range s.inLists {
		n += int64(len(lst))
	}
	return n
}
