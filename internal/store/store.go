// Package store simulates the on-disk closure layout of Section 4.1 so the
// priority-based algorithms can be measured by how much of the run-time
// graph they actually retrieve.
//
// For every closure target node v and parent label α the incoming edges
// L^α_v are kept sorted by non-decreasing shortest distance and served in
// fixed-size blocks — the unit Algorithm 2's Expand loads (Line 10). Two
// summary tables are loaded wholesale at initialization:
//
//   - D^α_β: per target node v (l(v)=β), d^α_v — the minimum incoming
//     distance from label α; seeds the e_v term of lb(v).
//   - E^α_β: per source node v (l(v)=α), the single outgoing edge to label
//     β with minimum distance; seeds the child lists of leaf-edge parents.
//
// Every Load* call increments I/O counters (blocks, entries, tables); the
// experiment harness reads them to reproduce the paper's retrieved-edges
// and I/O-versus-CPU comparisons. Entries carry a Direct flag marking
// closure pairs realized by a single data-graph edge, the admission rule
// for '/' query edges; wildcard label arguments transparently merge tables.
//
// # Layout, plane, replica
//
// A Store is three layers with different sharing disciplines:
//
//   - layout: the closure image (incoming lists, label index, graph),
//     shared by everyone. The incoming lists derive from a
//     closure.TableSource: New materializes every table up front
//     (today's fully-resident behavior), while NewFromSource faults a
//     (α, β) table in the first time any query touches it — the path
//     lazy and mmap snapshots ride, where the source serves entries
//     straight off the file. Once carved, a table's lists are published
//     copy-on-write and read lock-free forever after.
//   - plane: the derived data — D/E summary tables and wildcard-merged
//     incoming lists. In the paper these are materialized on disk next to
//     the closure, so deriving one is offline work paid once; here each
//     is derived exactly once process-wide and published through atomic
//     pointers (copy-on-write maps for the summary tables, per-node
//     slots for wildcard merges), so reads are lock-free and the mutex
//     is held only while a first derive publishes.
//   - counters: simulated-I/O accounting, private to each Store value.
//     Replica returns a Store sharing the layout and plane with fresh
//     counters, which is how the shard package keeps per-shard /stats
//     accounting without re-deriving any table per shard.
package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"ktpm/internal/closure"
	"ktpm/internal/graph"
	"ktpm/internal/label"
	"ktpm/internal/obs"
)

// DefaultBlockSize is the number of incoming edges per block. Sixteen
// entries keeps the block small relative to typical incoming-list lengths
// at laptop scale, preserving the paper's regime where a list spans many
// blocks and the trigger can stop after a prefix.
const DefaultBlockSize = 16

// InEdge is one incoming closure edge to a fixed target node.
type InEdge struct {
	From int32
	Dist int32
	// Direct marks entries realized by a single data-graph edge.
	Direct bool
}

// DEntry is one D-table row: node V has minimum incoming distance Min
// (from the table's source label).
type DEntry struct {
	V   int32
	Min int32
}

// EEntry is one E-table row: the minimum-distance outgoing edge From→To.
type EEntry struct {
	From, To int32
	Dist     int32
	Direct   bool
}

// Counters accumulates simulated I/O. Block reads (the L^α_v incoming
// lists) are random accesses; table reads (the D/E summaries) are
// sequential scans. The experiment harness prices them differently when
// modeling disk cost.
type Counters struct {
	// BlocksRead counts random block reads from incoming lists.
	BlocksRead int64
	// EntriesRead counts every entry delivered (blocks plus tables).
	EntriesRead int64
	// TableEntriesRead counts entries delivered by LoadD/LoadE only.
	TableEntriesRead int64
	// TablesRead counts summary tables materialized from the simulated
	// disk: the first LoadD/LoadE for a given (α, β, childOnly) anywhere
	// in the process derives the table and charges the calling replica;
	// later loads are served from the shared derived plane at memory
	// speed and count under TableHits instead.
	TablesRead int64
	// TableHits counts LoadD/LoadE calls answered by the shared derived
	// plane without touching the simulated disk.
	TableHits int64
}

func (c *Counters) addBlock(entries int64) {
	atomic.AddInt64(&c.BlocksRead, 1)
	atomic.AddInt64(&c.EntriesRead, entries)
}

// addTable charges one logical table load: every load delivers its entries
// to the query, but only the process-wide first derive is disk I/O.
func (c *Counters) addTable(entries int64, derived bool) {
	if derived {
		atomic.AddInt64(&c.TablesRead, 1)
	} else {
		atomic.AddInt64(&c.TableHits, 1)
	}
	atomic.AddInt64(&c.EntriesRead, entries)
	atomic.AddInt64(&c.TableEntriesRead, entries)
}

// pairKey identifies one (α, β) closure table.
type pairKey struct{ alpha, beta int32 }

// layout is the closure image shared by every replica. The carved
// incoming lists grow monotonically as (α, β) tables fault in from the
// source; reads are lock-free (one atomic load plus map lookups) and the
// mutex is held only while a first carve publishes.
type layout struct {
	g         *graph.Graph
	blockSize int
	src       closure.TableSource
	// columnar selects the structure-of-arrays carve (cols.go): tables
	// fault into per-pair colTabs — per-target spans over shared
	// from[]/dist[]/direct[] columns — instead of per-target []InEdge
	// maps, and ctabs below replaces tabs. Fixed at construction.
	columnar bool

	// byLabel[l] lists the nodes with label l, ascending, so table scans
	// touch only their own rows.
	byLabel [][]int32
	// direct[(u<<32)|v] is the weight of the direct data-graph edge u→v,
	// consulted while carving to set InEdge.Direct. Dropped once every
	// table is materialized (it only serves future carves).
	direct map[int64]int32

	mu sync.Mutex // serializes carves; readers never take it
	// tabs maps a carved (α, β) pair to its per-target incoming lists,
	// each sorted by (Dist, From); an empty inner map is a carved pair
	// with no entries (negative caching), and the sentinel key
	// {allLabels, β} marks "every (α, β) pair is carved" so wildcard
	// merges skip the lock. Published copy-on-write: a carve clones the
	// outer map only — O(carved pairs), never O(lists) — and inner maps
	// are immutable once published.
	tabs atomic.Pointer[map[pairKey]map[int32][]InEdge]
	// ctabs is the columnar-mode counterpart of tabs: carved (α, β) pairs
	// map to *colTab (nil for the {allLabels, β} sentinel), with the same
	// copy-on-write publication discipline. Nil outside columnar mode.
	ctabs atomic.Pointer[map[pairKey]*colTab]
	// faults counts every short carve (a lazy-source load failure),
	// monotonically. A derivation snapshots it before running and
	// publishes only if it is unchanged after: any carve it depended on
	// that came up short bumped the counter inside that window (repeated
	// failures bump it again), so an incomplete derivation can never be
	// cached — while faults outside the window, even never-repaired
	// ones, cost nothing.
	faults atomic.Int64
	// tablesLoaded counts carves — closure tables materialized from the
	// source into incoming lists. Shared by every replica (the layout
	// is), unlike the per-replica Counters.
	tablesLoaded atomic.Int64
}

// plane holds the shared derived data: each entry is derived exactly once
// process-wide and published through an atomic pointer, so readers never
// take the mutex. mu serializes only first derives; a derive re-checks
// under the lock before computing, so concurrent first requests for one
// table do the work once.
type plane struct {
	mu sync.Mutex
	// merged caches wildcard (all-label) incoming lists, indexed by node.
	// A fixed-size pointer array rather than a COW map: wildcard derives
	// touch one node at a time and a query can touch most of the graph,
	// so per-entry map republication would cost O(V) copying per node —
	// O(V²) for a graph-wide wildcard — where a slot store is O(1).
	merged []atomic.Pointer[[]InEdge]
	// mergedCols is the columnar-mode counterpart of merged: wildcard-
	// merged column views per node. Nil outside columnar mode.
	mergedCols []atomic.Pointer[EdgeCols]
	// dTabs / eTabs hold the derived summary tables, published
	// copy-on-write (table counts are small — one per label pair a
	// workload touches — so republication cost is negligible).
	dTabs atomic.Pointer[map[tableKey][]DEntry]
	eTabs atomic.Pointer[map[tableKey][]EEntry]
}

func newPlane(numNodes int, columnar bool) *plane {
	pl := &plane{merged: make([]atomic.Pointer[[]InEdge], numNodes)}
	if columnar {
		pl.mergedCols = make([]atomic.Pointer[EdgeCols], numNodes)
	}
	return pl
}

// Store is a simulated disk image of one closure: an immutable layout, a
// shared derived-data plane, and private I/O counters. A single Store
// safely serves concurrent queries (derived reads are lock-free, counters
// atomic); Replica adds independent accounting over the same data.
type Store struct {
	lay *layout
	pl  *plane

	// counters is shared by every view of this replica (WithTrace returns
	// a view, not a fork), so traced requests charge the same accounting.
	counters *Counters
	// trace, when set, parents "table_fault" spans recorded around the
	// slow paths — carves and first derives. Nil for untraced stores; the
	// fast paths only ever pay a nil check.
	trace *obs.Span
}

type tableKey struct {
	alpha, beta int32
	childOnly   bool
}

func key(alpha, v int32) int64 { return int64(alpha)<<32 | int64(uint32(v)) }

// Config parameterizes store construction beyond the block size.
type Config struct {
	// BlockSize is the entries-per-block unit; 0 means DefaultBlockSize.
	BlockSize int
	// Columnar selects the structure-of-arrays layout: tables carve into
	// per-target spans over contiguous from[]/dist[]/direct[] columns
	// (cols.go), lists are served as EdgeCols column views, and the D/E
	// summaries derive by per-column passes. Query results are identical
	// to the row-major layout; only the in-memory representation and the
	// kernel shapes differ.
	Columnar bool
}

// New lays out the closure source with the given block size (0 means
// DefaultBlockSize), materializing every table up front — the behavior
// an in-memory closure wants, since its entries are resident anyway.
func New(src closure.TableSource, blockSize int) *Store {
	s := NewFromSource(src, blockSize)
	s.MaterializeAll()
	return s
}

// NewFromSource lays out src with the given block size (0 means
// DefaultBlockSize) without touching any table payload: a (α, β) table
// is carved into per-target incoming lists the first time a query asks
// for one of its lists. Construction cost is O(nodes + edges) — the
// label index and the direct-edge lookup — never O(closure).
func NewFromSource(src closure.TableSource, blockSize int) *Store {
	return NewFromConfig(src, Config{BlockSize: blockSize})
}

// NewFromConfig is NewFromSource with the full Config: the same lazy
// carve-on-first-touch construction, in the layout cfg selects.
func NewFromConfig(src closure.TableSource, cfg Config) *Store {
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	g := src.Graph()
	lay := &layout{
		g:         g,
		blockSize: blockSize,
		src:       src,
		columnar:  cfg.Columnar,
		byLabel:   make([][]int32, g.NumLabels()),
		direct:    make(map[int64]int32),
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		l := g.Label(v)
		lay.byLabel[l] = append(lay.byLabel[l], v)
	}
	g.Edges(func(e graph.Edge) bool {
		lay.direct[key(e.From, e.To)] = e.Weight
		return true
	})
	return &Store{lay: lay, pl: newPlane(g.NumNodes(), cfg.Columnar), counters: &Counters{}}
}

// Columnar reports whether the store uses the structure-of-arrays layout.
func (s *Store) Columnar() bool { return s.lay.columnar }

// MaterializeAll carves every table of the source in one publish, the
// eager mode. The direct-edge lookup is dropped afterwards: with no
// carves left to serve it would only hold memory.
func (s *Store) MaterializeAll() {
	lay := s.lay
	if lay.columnar {
		lay.materializeAllCols()
		return
	}
	lay.mu.Lock()
	defer lay.mu.Unlock()
	tabs := cloneTabs(lay.tabs.Load())
	lay.src.TableLens(func(alpha, beta int32, count int) bool {
		if _, ok := tabs[pairKey{alpha, beta}]; !ok {
			lay.carveLocked(alpha, beta, tabs)
		}
		return true
	})
	// Pairs outside the source's directory are not negative-cached here;
	// the first wildcard merge per target label batch-carves them (one
	// outer-map clone) in carveTargets.
	lay.tabs.Store(&tabs)
	lay.maybeDropDirectLocked()
}

// allLabels is the sentinel alpha marking "every (α, beta) pair is
// carved" in the carved-table map; no real label is negative, and
// listFor rejects negative alphas before lookup, so the sentinel can
// never shadow a real table.
const allLabels int32 = -1

// carveTargets ensures every (α, beta) table is carved, in one clone and
// publish — the wildcard merge's fault path. Carving the pairs one
// listFor miss at a time would take and release the lock once per label
// per node on a cold wildcard query.
func (lay *layout) carveTargets(beta int32, tr *obs.Span) {
	if beta < 0 || int(beta) >= len(lay.byLabel) {
		return
	}
	if lay.columnar {
		lay.carveTargetsCols(beta, tr)
		return
	}
	k := pairKey{allLabels, beta}
	if m := lay.tabs.Load(); m != nil {
		if _, ok := (*m)[k]; ok {
			return
		}
	}
	lay.mu.Lock()
	defer lay.mu.Unlock()
	if m := lay.tabs.Load(); m != nil {
		if _, ok := (*m)[k]; ok {
			return
		}
	}
	sp := tr.StartChild("table_fault")
	sp.SetAttr("op", "carve_targets")
	sp.SetAttr("beta", beta)
	defer sp.End()
	tabs := cloneTabs(lay.tabs.Load())
	whole := true
	for a := range lay.byLabel {
		if _, ok := tabs[pairKey{int32(a), beta}]; !ok {
			whole = lay.carveLocked(int32(a), beta, tabs) && whole
		}
	}
	// The sentinel claims every (α, beta) pair is resident; a short load
	// leaves it unset so the next wildcard touch retries the fault.
	if whole {
		tabs[k] = nil
	}
	lay.tabs.Store(&tabs)
	lay.maybeDropDirectLocked()
}

// cloneTabs copies the outer carved-table map (nil-safe). Inner maps are
// immutable once published and are shared, so a clone costs O(carved
// pairs) regardless of how many lists they hold.
func cloneTabs(p *map[pairKey]map[int32][]InEdge) map[pairKey]map[int32][]InEdge {
	if p == nil {
		return make(map[pairKey]map[int32][]InEdge, 16)
	}
	out := make(map[pairKey]map[int32][]InEdge, len(*p)+1)
	for k, v := range *p {
		out[k] = v
	}
	return out
}

// carveLocked faults the (alpha, beta) table from the source and adds
// its per-target lists to tabs. Callers hold lay.mu and publish tabs
// afterwards. Closure tables are sorted by (To, Dist, From): contiguous
// runs per target node are already in block order. It reports whether
// the table arrived whole: a lazy source that hits a fault-time load
// failure serves the table as empty, and caching that as carved would
// silently drop the table's edges for the process lifetime — a short
// load leaves the pair uncarved (bumping the fault counter) so a later
// touch refaults it.
func (lay *layout) carveLocked(alpha, beta int32, tabs map[pairKey]map[int32][]InEdge) bool {
	k := pairKey{alpha, beta}
	entries := lay.src.Table(alpha, beta)
	if len(entries) != lay.src.TableLen(alpha, beta) {
		lay.faults.Add(1)
		return false
	}
	tab := make(map[int32][]InEdge)
	for i := 0; i < len(entries); {
		j := i
		to := entries[i].To
		for j < len(entries) && entries[j].To == to {
			j++
		}
		lst := make([]InEdge, 0, j-i)
		for _, e := range entries[i:j] {
			w, ok := lay.direct[key(e.From, e.To)]
			lst = append(lst, InEdge{
				From:   e.From,
				Dist:   e.Dist,
				Direct: ok && w == e.Dist,
			})
		}
		tab[to] = lst
		i = j
	}
	tabs[k] = tab
	if len(entries) > 0 {
		// Negative carves (no such table in the source) are cached so the
		// miss never refaults, but only real tables count as loads.
		lay.tablesLoaded.Add(1)
	}
	return true
}

// maybeDropDirectLocked frees the direct-edge lookup once every real
// table has carved in: it only serves future carves, so past that point
// it is O(edges) of dead memory. Callers hold lay.mu.
func (lay *layout) maybeDropDirectLocked() {
	if lay.direct != nil && lay.tablesLoaded.Load() >= int64(lay.src.NumTables()) {
		lay.direct = nil
	}
}

// listFor returns the incoming list of v from the concrete label alpha,
// carving the (alpha, l(v)) table on first touch. The steady-state path
// is one atomic load and two map lookups.
func (lay *layout) listFor(alpha, v int32, tr *obs.Span) []InEdge {
	if alpha < 0 || int(alpha) >= len(lay.byLabel) {
		// A query-only label interned after the graph was built: no
		// closure table can exist, and caching the miss would let
		// adversarial queries grow the carved set without bound.
		return nil
	}
	k := pairKey{alpha, lay.g.Label(v)}
	if m := lay.tabs.Load(); m != nil {
		if tab, ok := (*m)[k]; ok {
			return tab[v]
		}
	}
	lay.mu.Lock()
	m := lay.tabs.Load()
	if m != nil {
		if tab, ok := (*m)[k]; ok {
			lay.mu.Unlock()
			return tab[v]
		}
	}
	sp := tr.StartChild("table_fault")
	sp.SetAttr("op", "carve")
	sp.SetAttr("alpha", k.alpha)
	sp.SetAttr("beta", k.beta)
	tabs := cloneTabs(m)
	// A short load (source fault) publishes nothing; the next touch
	// refaults.
	ok := lay.carveLocked(k.alpha, k.beta, tabs)
	if ok {
		lay.tabs.Store(&tabs)
		lay.maybeDropDirectLocked()
	}
	lay.mu.Unlock()
	sp.End()
	if !ok {
		return nil
	}
	return tabs[k][v]
}

// Replica returns a store sharing s's immutable closure layout AND its
// derived-data plane, with private I/O counters. The shard package gives
// every shard a replica so per-shard /stats accounting stays isolated
// while every derived table is still computed at most once process-wide;
// the marginal memory cost of a replica is one Counters value.
func (s *Store) Replica() *Store {
	return &Store{lay: s.lay, pl: s.pl, counters: &Counters{}}
}

// WithTrace returns a view of s whose slow paths — table carves and first
// derives — record "table_fault" spans under sp. The view shares s's
// layout, plane, AND counters, so it is a per-request lens, not a fork:
// I/O charged through it lands on the same replica accounting. A nil sp
// returns s unchanged.
func (s *Store) WithTrace(sp *obs.Span) *Store {
	if sp == nil {
		return s
	}
	return &Store{lay: s.lay, pl: s.pl, counters: s.counters, trace: sp}
}

// PrivateReplica returns a store sharing only s's immutable layout, with a
// fresh derived-data plane of its own: it re-derives every table it
// touches, the pre-plane behavior. Kept for benchmarks that quantify what
// the shared plane saves; production paths should use Replica.
func (s *Store) PrivateReplica() *Store {
	return &Store{lay: s.lay, pl: newPlane(s.lay.g.NumNodes(), s.lay.columnar), counters: &Counters{}}
}

// Graph returns the underlying data graph.
func (s *Store) Graph() *graph.Graph { return s.lay.g }

// BlockSize returns the configured block size.
func (s *Store) BlockSize() int { return s.lay.blockSize }

// Counters returns a snapshot of the accumulated I/O counters.
func (s *Store) Counters() Counters {
	c := s.counters
	return Counters{
		BlocksRead:       atomic.LoadInt64(&c.BlocksRead),
		EntriesRead:      atomic.LoadInt64(&c.EntriesRead),
		TableEntriesRead: atomic.LoadInt64(&c.TableEntriesRead),
		TablesRead:       atomic.LoadInt64(&c.TablesRead),
		TableHits:        atomic.LoadInt64(&c.TableHits),
	}
}

// ResetCounters zeroes the I/O counters.
func (s *Store) ResetCounters() {
	c := s.counters
	atomic.StoreInt64(&c.BlocksRead, 0)
	atomic.StoreInt64(&c.EntriesRead, 0)
	atomic.StoreInt64(&c.TableEntriesRead, 0)
	atomic.StoreInt64(&c.TablesRead, 0)
	atomic.StoreInt64(&c.TableHits, 0)
}

// cowPut republishes src extended with (k, v). Callers must hold pl.mu —
// concurrent publishers would lose each other's entries. Readers loading
// the old pointer keep a consistent (if slightly stale) map; the next load
// sees the new one.
func cowPut[K comparable, V any](p *atomic.Pointer[map[K]V], k K, v V) {
	old := p.Load()
	var next map[K]V
	if old == nil {
		next = make(map[K]V, 8)
	} else {
		next = make(map[K]V, len(*old)+1)
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[k] = v
	p.Store(&next)
}

// cowGet reads the current published map without locking.
func cowGet[K comparable, V any](p *atomic.Pointer[map[K]V], k K) (V, bool) {
	m := p.Load()
	if m == nil {
		var zero V
		return zero, false
	}
	v, ok := (*m)[k]
	return v, ok
}

// inList returns the full incoming list of v from label alpha, resolving
// the wildcard by merging all labels. No I/O is counted here; counting
// happens at block granularity in LoadBlock and at table granularity in
// LoadD/LoadE. The wildcard merge is derived once process-wide and read
// lock-free afterwards.
func (s *Store) inList(alpha, v int32, tr *obs.Span) []InEdge {
	if s.lay.columnar {
		// Row-major compatibility view in columnar mode: materialize from
		// the columns. Kept off the hot paths — enumeration resolves
		// EdgeCols through OpenList instead.
		return s.inListCols(alpha, v, tr).appendInEdges(nil)
	}
	if alpha != label.Wildcard {
		return s.lay.listFor(alpha, v, tr)
	}
	if p := s.pl.merged[v].Load(); p != nil {
		return *p
	}
	// First-writer-wins, no lock: racing first touches both derive (the
	// inputs are immutable, so the results are identical) and the loser
	// adopts the winner's list. Wildcard merges happen per node during
	// enumeration, so serializing them behind the plane mutex would make
	// concurrent cold wildcard queries convoy; a rare duplicated merge is
	// cheaper. This also keeps table derives (which run under pl.mu and
	// resolve wildcard lists mid-derive) free of reentrancy concerns.
	faultsBefore := s.lay.faults.Load()
	merged := s.mergeWildcard(v, tr)
	if s.lay.faults.Load() != faultsBefore {
		// A carve came up short while this merge ran, so the result may
		// be missing that table's edges; serve it best-effort but do not
		// publish — the next touch refaults and rebuilds.
		return merged
	}
	if !s.pl.merged[v].CompareAndSwap(nil, &merged) {
		return *s.pl.merged[v].Load()
	}
	return merged
}

// mergeWildcard derives the all-label incoming list of v from the
// layout, carving any tables not yet faulted (all of v's label's tables
// in one batch, so a cold wildcard query faults each table once).
func (s *Store) mergeWildcard(v int32, tr *obs.Span) []InEdge {
	s.lay.carveTargets(s.lay.g.Label(v), tr)
	var merged []InEdge
	for a := int32(0); int(a) < s.lay.g.NumLabels(); a++ {
		merged = append(merged, s.lay.listFor(a, v, tr)...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].From < merged[j].From
	})
	return merged
}

// ListHandle is one resolved incoming list L^α_v: the list is looked up
// (and its table carved, if cold) exactly once at OpenList, and every
// block access afterwards reuses the resolution. The enumerator holds one
// handle per frontier node, which removes the per-block re-resolution
// NumBlocks/LoadBlock used to pay (each call walked the carved-table maps
// again for the same pair). Blocks read through the handle charge the
// opening store's counters exactly like LoadBlock.
type ListHandle struct {
	s        *Store
	row      []InEdge // row-major backing
	cols     EdgeCols // columnar backing
	columnar bool
}

// OpenList resolves L^alpha_v (alpha may be the wildcard) once.
func (s *Store) OpenList(alpha, v int32) ListHandle {
	if s.lay.columnar {
		return ListHandle{s: s, cols: s.inListCols(alpha, v, s.trace), columnar: true}
	}
	return ListHandle{s: s, row: s.inList(alpha, v, s.trace)}
}

// Columnar reports whether BlockCols is the handle's native (copy-free)
// block access.
func (h ListHandle) Columnar() bool { return h.columnar }

// Len returns the resolved list's entry count.
func (h ListHandle) Len() int {
	if h.columnar {
		return h.cols.Len()
	}
	return len(h.row)
}

// NumBlocks returns how many blocks the resolved list spans.
func (h ListHandle) NumBlocks() int {
	return (h.Len() + h.s.lay.blockSize - 1) / h.s.lay.blockSize
}

// blockBounds returns the [lo, hi) lane range of block idx; empty when
// idx is past the end. last mirrors LoadBlock's contract.
func (h ListHandle) blockBounds(idx int) (lo, hi int, last bool) {
	n := h.Len()
	lo = idx * h.s.lay.blockSize
	if lo >= n {
		return 0, 0, true
	}
	hi = lo + h.s.lay.blockSize
	if hi > n {
		hi = n
	}
	return lo, hi, hi == n
}

// Block reads the idx-th block as row-major entries, counting one block
// of I/O. On a columnar handle the block is materialized (a copy); block
// kernels should use BlockCols instead.
func (h ListHandle) Block(idx int) (entries []InEdge, last bool) {
	lo, hi, last := h.blockBounds(idx)
	if hi == lo {
		return nil, true
	}
	h.s.counters.addBlock(int64(hi - lo))
	if h.columnar {
		out := make([]InEdge, hi-lo)
		for i := range out {
			out[i] = InEdge{From: h.cols.From[lo+i], Dist: h.cols.Dist[lo+i], Direct: h.cols.Direct[lo+i]}
		}
		return out, last
	}
	return h.row[lo:hi], last
}

// BlockCols reads the idx-th block as a column view, counting one block
// of I/O. Only valid on columnar handles (zero-copy subslices of the
// carved columns).
func (h ListHandle) BlockCols(idx int) (block EdgeCols, last bool) {
	lo, hi, last := h.blockBounds(idx)
	if hi == lo {
		return EdgeCols{}, true
	}
	h.s.counters.addBlock(int64(hi - lo))
	return h.cols.slice(lo, hi), last
}

// NumBlocks returns how many blocks the incoming list L^alpha_v spans.
func (s *Store) NumBlocks(alpha, v int32) int {
	return s.OpenList(alpha, v).NumBlocks()
}

// LoadBlock reads the idx-th block of L^alpha_v (alpha may be the
// wildcard), counting one block of I/O. last reports whether this was the
// final block; a list with no entries returns (nil, true) at idx 0.
// Callers reading several blocks of one list should OpenList once and use
// the handle.
func (s *Store) LoadBlock(alpha, v int32, idx int) (entries []InEdge, last bool) {
	return s.OpenList(alpha, v).Block(idx)
}

// LoadD reads the D^alpha_beta table: per target node with label beta, the
// minimum incoming distance from label alpha. childOnly restricts to
// direct edges (the '/' variant); wildcard alpha/beta merge labels. The
// first call anywhere in the process derives the table (TablesRead);
// later calls on any replica read the shared plane (TableHits). The
// returned slice is the published table; callers must not modify it.
func (s *Store) LoadD(alpha, beta int32, childOnly bool) []DEntry {
	k := tableKey{alpha, beta, childOnly}
	out, ok := cowGet(&s.pl.dTabs, k)
	derived := false
	if !ok {
		s.pl.mu.Lock()
		if out, ok = cowGet(&s.pl.dTabs, k); !ok {
			derived = true
			// Nested carves parent under the derive span, so a stage
			// walk that skips same-name descendants counts the fault
			// time once.
			sp := s.trace.StartChild("table_fault")
			sp.SetAttr("op", "derive_d")
			sp.SetAttr("alpha", alpha)
			sp.SetAttr("beta", beta)
			faultsBefore := s.lay.faults.Load()
			s.forTargets(beta, func(v int32) {
				if s.lay.columnar {
					// Columnar derive: lanes are distance-sorted, so the
					// admitted minimum is lane 0, or the first direct lane
					// found by a flag-column scan.
					ec := s.inListCols(alpha, v, sp)
					i := 0
					if childOnly {
						i = firstTrue(ec.Direct)
					}
					if i >= 0 && i < len(ec.Dist) {
						out = append(out, DEntry{V: v, Min: ec.Dist[i]})
					}
					return
				}
				for _, e := range s.inList(alpha, v, sp) {
					if childOnly && !e.Direct {
						continue
					}
					out = append(out, DEntry{V: v, Min: e.Dist})
					break // lists are distance-sorted
				}
			})
			sp.End()
			// A derivation over a short carve is served but never
			// published: once cached it would outlive the refault that
			// repairs the layout. Any carve this derivation depended on
			// that failed did so inside this window.
			if s.lay.faults.Load() == faultsBefore {
				cowPut(&s.pl.dTabs, k, out)
			}
		}
		s.pl.mu.Unlock()
	}
	s.counters.addTable(int64(len(out)), derived)
	return out
}

// LoadE reads the E^alpha_beta table: per source node with label alpha,
// the single minimum-distance outgoing edge to label beta. childOnly
// restricts to direct edges; wildcard beta takes the minimum over all
// target labels. Derivation and counting follow LoadD. The returned slice
// is the published table; callers must not modify it.
func (s *Store) LoadE(alpha, beta int32, childOnly bool) []EEntry {
	k := tableKey{alpha, beta, childOnly}
	out, ok := cowGet(&s.pl.eTabs, k)
	derived := false
	if !ok {
		s.pl.mu.Lock()
		if out, ok = cowGet(&s.pl.eTabs, k); !ok {
			derived = true
			sp := s.trace.StartChild("table_fault")
			sp.SetAttr("op", "derive_e")
			sp.SetAttr("alpha", alpha)
			sp.SetAttr("beta", beta)
			faultsBefore := s.lay.faults.Load()
			best := make(map[int32]EEntry)
			s.forTargets(beta, func(v int32) {
				if s.lay.columnar {
					ec := s.inListCols(alpha, v, sp)
					for i := range ec.From {
						if childOnly && !ec.Direct[i] {
							continue
						}
						f, d := ec.From[i], ec.Dist[i]
						cur, ok := best[f]
						if !ok || d < cur.Dist || (d == cur.Dist && v < cur.To) {
							best[f] = EEntry{From: f, To: v, Dist: d, Direct: ec.Direct[i]}
						}
					}
					return
				}
				for _, e := range s.inList(alpha, v, sp) {
					if childOnly && !e.Direct {
						continue
					}
					cur, ok := best[e.From]
					if !ok || e.Dist < cur.Dist || (e.Dist == cur.Dist && v < cur.To) {
						best[e.From] = EEntry{From: e.From, To: v, Dist: e.Dist, Direct: e.Direct}
					}
				}
			})
			out = make([]EEntry, 0, len(best))
			for _, e := range best {
				out = append(out, e)
			}
			sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
			sp.End()
			// Like LoadD: never cache a derivation built over a short
			// carve.
			if s.lay.faults.Load() == faultsBefore {
				cowPut(&s.pl.eTabs, k, out)
			}
		}
		s.pl.mu.Unlock()
	}
	s.counters.addTable(int64(len(out)), derived)
	return out
}

// forTargets invokes fn for every node whose label matches beta (all
// nodes for the wildcard), in ascending node order. Labels interned after
// the store was built (query-only labels) have no targets.
func (s *Store) forTargets(beta int32, fn func(v int32)) {
	if beta == label.Wildcard {
		for v := int32(0); int(v) < s.lay.g.NumNodes(); v++ {
			fn(v)
		}
		return
	}
	if int(beta) >= len(s.lay.byLabel) {
		return
	}
	for _, v := range s.lay.byLabel[beta] {
		fn(v)
	}
}

// TotalEdges returns the total number of stored incoming entries — the
// m_R upper bound a full load would incur for a query touching every
// table. Answered from the source's directory, so it never faults a
// table in.
func (s *Store) TotalEdges() int64 { return s.lay.src.NumEntries() }

// TablesLoaded returns how many closure tables have been materialized
// from the source into the layout's incoming lists. The layout is shared,
// so every replica reports the same number; after New (or
// MaterializeAll) it is the full table count, while a store over a lazy
// snapshot starts at 0 and grows as queries fault tables in.
func (s *Store) TablesLoaded() int64 { return s.lay.tablesLoaded.Load() }

// Source returns the closure table source backing the layout.
func (s *Store) Source() closure.TableSource { return s.lay.src }
