package store

import (
	"sort"

	"ktpm/internal/closure"
	"ktpm/internal/label"
	"ktpm/internal/obs"
)

// Columnar (structure-of-arrays) layout, selected by Config.Columnar: the
// carved image of one (α, β) closure table is a colTab — per-target spans
// over three shared columns — instead of a map of per-target []InEdge
// slices. Lists are served as EdgeCols column views, so the enumeration
// hot loops (distance threshold scans, direct-flag filtering, D/E
// derivation, wildcard merging) become tight passes over contiguous
// int32/bool columns the compiler can keep in cache and vectorize,
// instead of strided walks over 12-byte structs. Query results are
// byte-identical to the row-major layout; the property tests in
// cols_test.go and the v1-vs-v2 snapshot tests pin that.

// EdgeCols is a column view of one incoming list (or one block of it):
// lane i is the edge {From[i], Dist[i], Direct[i]}, and lanes are sorted
// by (Dist, From) exactly like the row-major []InEdge. The slices are
// shared with the carved layout and must not be modified.
type EdgeCols struct {
	From   []int32
	Dist   []int32
	Direct []bool
}

// Len returns the number of lanes.
func (ec EdgeCols) Len() int { return len(ec.From) }

// slice returns the [lo, hi) lane sub-view.
func (ec EdgeCols) slice(lo, hi int) EdgeCols {
	return EdgeCols{From: ec.From[lo:hi], Dist: ec.Dist[lo:hi], Direct: ec.Direct[lo:hi]}
}

// appendInEdges materializes the view as row-major edges, for the
// compatibility paths that still want []InEdge.
func (ec EdgeCols) appendInEdges(dst []InEdge) []InEdge {
	for i := range ec.From {
		dst = append(dst, InEdge{From: ec.From[i], Dist: ec.Dist[i], Direct: ec.Direct[i]})
	}
	return dst
}

// FilterDistGE is the threshold-scan kernel over a distance-sorted
// column: it returns the number of leading lanes with dist < thr —
// equivalently the index of the first lane with dist ≥ thr, or len(dist)
// when none reaches the threshold. A tight forward scan rather than a
// binary search: callers (the wildcard gallop merge, block kernels)
// consume the returned prefix anyway, so the scan cost is amortized by
// the copy and the branch-predictable loop auto-vectorizes.
func FilterDistGE(dist []int32, thr int32) int {
	for i, d := range dist {
		if d >= thr {
			return i
		}
	}
	return len(dist)
}

// firstTrue returns the index of the first set lane of a flag column, or
// -1. The columnar D derive uses it to find the first direct edge.
func firstTrue(flags []bool) int {
	for i, f := range flags {
		if f {
			return i
		}
	}
	return -1
}

// colTab is the carved columnar image of one (α, β) table: targets[r] is
// the r-th target node (ascending), and its incoming lanes are
// [starts[r], starts[r+1]) in the from/dist/direct columns. Lanes within
// a span are (Dist, From)-sorted — the closure's canonical (To, Dist,
// From) order delivers both properties for free. Immutable once
// published.
type colTab struct {
	targets []int32
	starts  []int32 // len(targets)+1
	from    []int32
	dist    []int32
	direct  []bool
}

// span returns v's lane range, empty when v has no incoming entries.
func (t *colTab) span(v int32) (lo, hi int32) {
	if t == nil {
		return 0, 0
	}
	i := sort.Search(len(t.targets), func(i int) bool { return t.targets[i] >= v })
	if i == len(t.targets) || t.targets[i] != v {
		return 0, 0
	}
	return t.starts[i], t.starts[i+1]
}

// view returns v's incoming list as a column view.
func (t *colTab) view(v int32) EdgeCols {
	lo, hi := t.span(v)
	if lo == hi {
		return EdgeCols{}
	}
	return EdgeCols{From: t.from[lo:hi], Dist: t.dist[lo:hi], Direct: t.direct[lo:hi]}
}

// cloneCTabs copies the outer columnar carved-table map (nil-safe);
// colTabs are immutable once published and are shared.
func cloneCTabs(p *map[pairKey]*colTab) map[pairKey]*colTab {
	if p == nil {
		return make(map[pairKey]*colTab, 16)
	}
	out := make(map[pairKey]*colTab, len(*p)+1)
	for k, v := range *p {
		out[k] = v
	}
	return out
}

// carveColsLocked is carveLocked for the columnar layout: it faults the
// (alpha, beta) table from the source as columns (zero-copy from a v2
// mmap snapshot, a transpose otherwise), copies from/dist into the
// layout's own columns, computes the direct flags, and indexes target
// runs into a CSR span table. The run detection is a single pass over the
// contiguous to[] column. Short loads behave exactly like carveLocked:
// fault counted, nothing published.
func (lay *layout) carveColsLocked(alpha, beta int32, ctabs map[pairKey]*colTab) bool {
	k := pairKey{alpha, beta}
	cols := closure.TableColsOf(lay.src, alpha, beta)
	n := cols.Len()
	if n != lay.src.TableLen(alpha, beta) {
		lay.faults.Add(1)
		return false
	}
	t := &colTab{}
	if n > 0 {
		t.from = make([]int32, n)
		t.dist = make([]int32, n)
		t.direct = make([]bool, n)
		copy(t.from, cols.From)
		copy(t.dist, cols.Dist)
		for i := 0; i < n; {
			to := cols.To[i]
			j := i + 1
			for j < n && cols.To[j] == to {
				j++
			}
			t.targets = append(t.targets, to)
			t.starts = append(t.starts, int32(i))
			for lane := i; lane < j; lane++ {
				w, ok := lay.direct[key(cols.From[lane], to)]
				t.direct[lane] = ok && w == cols.Dist[lane]
			}
			i = j
		}
		t.starts = append(t.starts, int32(n))
	}
	ctabs[k] = t
	if n > 0 {
		lay.tablesLoaded.Add(1)
	}
	return true
}

// colsFor is listFor for the columnar layout: the incoming column view of
// v from the concrete label alpha, carving the (alpha, l(v)) table on
// first touch.
func (lay *layout) colsFor(alpha, v int32, tr *obs.Span) EdgeCols {
	if alpha < 0 || int(alpha) >= len(lay.byLabel) {
		return EdgeCols{}
	}
	k := pairKey{alpha, lay.g.Label(v)}
	if m := lay.ctabs.Load(); m != nil {
		if t, ok := (*m)[k]; ok {
			return t.view(v)
		}
	}
	lay.mu.Lock()
	m := lay.ctabs.Load()
	if m != nil {
		if t, ok := (*m)[k]; ok {
			lay.mu.Unlock()
			return t.view(v)
		}
	}
	sp := tr.StartChild("table_fault")
	sp.SetAttr("op", "carve")
	sp.SetAttr("alpha", k.alpha)
	sp.SetAttr("beta", k.beta)
	ctabs := cloneCTabs(m)
	ok := lay.carveColsLocked(k.alpha, k.beta, ctabs)
	if ok {
		lay.ctabs.Store(&ctabs)
		lay.maybeDropDirectLocked()
	}
	lay.mu.Unlock()
	sp.End()
	if !ok {
		return EdgeCols{}
	}
	return ctabs[k].view(v)
}

// carveTargetsCols is carveTargets for the columnar layout: one clone and
// publish covering every (α, beta) pair, with the same {allLabels, beta}
// sentinel discipline.
func (lay *layout) carveTargetsCols(beta int32, tr *obs.Span) {
	k := pairKey{allLabels, beta}
	if m := lay.ctabs.Load(); m != nil {
		if _, ok := (*m)[k]; ok {
			return
		}
	}
	lay.mu.Lock()
	defer lay.mu.Unlock()
	if m := lay.ctabs.Load(); m != nil {
		if _, ok := (*m)[k]; ok {
			return
		}
	}
	sp := tr.StartChild("table_fault")
	sp.SetAttr("op", "carve_targets")
	sp.SetAttr("beta", beta)
	defer sp.End()
	ctabs := cloneCTabs(lay.ctabs.Load())
	whole := true
	for a := range lay.byLabel {
		if _, ok := ctabs[pairKey{int32(a), beta}]; !ok {
			whole = lay.carveColsLocked(int32(a), beta, ctabs) && whole
		}
	}
	if whole {
		ctabs[k] = nil
	}
	lay.ctabs.Store(&ctabs)
	lay.maybeDropDirectLocked()
}

// materializeAllCols is MaterializeAll for the columnar layout.
func (lay *layout) materializeAllCols() {
	lay.mu.Lock()
	defer lay.mu.Unlock()
	ctabs := cloneCTabs(lay.ctabs.Load())
	lay.src.TableLens(func(alpha, beta int32, count int) bool {
		if _, ok := ctabs[pairKey{alpha, beta}]; !ok {
			lay.carveColsLocked(alpha, beta, ctabs)
		}
		return true
	})
	lay.ctabs.Store(&ctabs)
	lay.maybeDropDirectLocked()
}

// inListCols is inList for the columnar layout: the full incoming column
// view of v from label alpha, resolving the wildcard through the shared
// merged-columns plane with the same faults-window publication guard as
// the row-major path.
func (s *Store) inListCols(alpha, v int32, tr *obs.Span) EdgeCols {
	if alpha != label.Wildcard {
		return s.lay.colsFor(alpha, v, tr)
	}
	if p := s.pl.mergedCols[v].Load(); p != nil {
		return *p
	}
	faultsBefore := s.lay.faults.Load()
	merged := s.mergeWildcardCols(v, tr)
	if s.lay.faults.Load() != faultsBefore {
		return merged
	}
	if !s.pl.mergedCols[v].CompareAndSwap(nil, &merged) {
		return *s.pl.mergedCols[v].Load()
	}
	return merged
}

// mergeWildcardCols derives the all-label incoming column view of v as a
// galloping k-way merge of the per-label spans, which are each already
// (Dist, From)-sorted. Instead of the row-major path's
// concatenate-and-sort, each round picks the source whose head lane is
// the (Dist, From) minimum and bulk-copies its run of lanes strictly
// below every other head's distance — found by the FilterDistGE threshold
// kernel — so long sorted runs move as three column copies. From values
// are globally unique across sources for a fixed target (a source label
// determines its table), so the (Dist, From) order is total and the
// merge deterministic.
func (s *Store) mergeWildcardCols(v int32, tr *obs.Span) EdgeCols {
	s.lay.carveTargets(s.lay.g.Label(v), tr)
	var srcs []EdgeCols
	for a := int32(0); int(a) < s.lay.g.NumLabels(); a++ {
		if ec := s.lay.colsFor(a, v, tr); ec.Len() > 0 {
			srcs = append(srcs, ec)
		}
	}
	switch len(srcs) {
	case 0:
		return EdgeCols{}
	case 1:
		// A single source's view is immutable and already in merge order;
		// share it without copying.
		return srcs[0]
	}
	total := 0
	for _, ec := range srcs {
		total += ec.Len()
	}
	out := EdgeCols{
		From:   make([]int32, 0, total),
		Dist:   make([]int32, 0, total),
		Direct: make([]bool, 0, total),
	}
	pos := make([]int, len(srcs))
	for len(out.From) < total {
		// Pick the source with the minimum (Dist, From) head.
		best := -1
		var bd, bf int32
		for i, ec := range srcs {
			if pos[i] >= ec.Len() {
				continue
			}
			d, f := ec.Dist[pos[i]], ec.From[pos[i]]
			if best < 0 || d < bd || (d == bd && f < bf) {
				best, bd, bf = i, d, f
			}
		}
		// Find the lowest competing head distance.
		competing := false
		var cd int32
		for i, ec := range srcs {
			if i == best || pos[i] >= ec.Len() {
				continue
			}
			if d := ec.Dist[pos[i]]; !competing || d < cd {
				competing, cd = true, d
			}
		}
		ec := srcs[best]
		lo := pos[best]
		n := ec.Len() - lo
		if competing {
			// Lanes strictly below the best competitor are safe to move in
			// bulk; a head that ties the competitor still moves alone (it
			// won the (Dist, From) comparison).
			if k := FilterDistGE(ec.Dist[lo:], cd); k > 0 {
				n = k
			} else {
				n = 1
			}
		}
		out.From = append(out.From, ec.From[lo:lo+n]...)
		out.Dist = append(out.Dist, ec.Dist[lo:lo+n]...)
		out.Direct = append(out.Direct, ec.Direct[lo:lo+n]...)
		pos[best] += n
	}
	return out
}
