package store

import (
	"reflect"
	"sync"
	"testing"

	"ktpm/internal/closure"
	"ktpm/internal/gen"
	"ktpm/internal/graph"
	"ktpm/internal/label"
)

// example41 builds the data graph of Figure 2(b) as rendered in the rtg
// tests, enough to exercise D/E/L layouts.
func smallGraph(t testing.TB) (*graph.Graph, *closure.Closure) {
	t.Helper()
	b := graph.NewBuilder()
	for _, l := range []string{"a", "a", "c", "c", "d", "e"} {
		b.AddNode(l)
	}
	// a0 -> c2 -> d4; a0 -> c3; a1 -> c3 -> d4 (w2); c2 -> e5.
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddWeightedEdge(3, 4, 2)
	b.AddEdge(2, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, closure.Compute(g, closure.Options{})
}

func lbl(g *graph.Graph, name string) int32 {
	id, ok := g.Labels.Lookup(name)
	if !ok {
		panic("missing label " + name)
	}
	return int32(id)
}

func TestLoadBlockSortedByDistance(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 2)
	a, d := lbl(g, "a"), int32(4)
	var all []InEdge
	for i := 0; ; i++ {
		blk, last := s.LoadBlock(a, d, i)
		all = append(all, blk...)
		if last {
			break
		}
	}
	// Incoming to d4 from label a: a0 at distance 2 (a0->c2->d4), a1 at
	// distance 3 (a1->c3->d4 weight 1+2).
	if len(all) != 2 {
		t.Fatalf("incoming count = %d, want 2", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Dist > all[i].Dist {
			t.Fatalf("block entries unsorted: %v", all)
		}
	}
	if all[0].From != 0 || all[0].Dist != 2 {
		t.Fatalf("first entry = %+v, want a0 dist 2", all[0])
	}
}

func TestLoadBlockCountsIO(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 1) // one entry per block
	a, d := lbl(g, "a"), int32(4)
	if n := s.NumBlocks(a, d); n != 2 {
		t.Fatalf("NumBlocks = %d, want 2", n)
	}
	s.LoadBlock(a, d, 0)
	s.LoadBlock(a, d, 1)
	cnt := s.Counters()
	if cnt.BlocksRead != 2 || cnt.EntriesRead != 2 {
		t.Fatalf("counters = %+v", cnt)
	}
	s.ResetCounters()
	if s.Counters().BlocksRead != 0 {
		t.Fatal("ResetCounters failed")
	}
}

func TestLoadBlockPastEnd(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 4)
	blk, last := s.LoadBlock(lbl(g, "a"), 4, 9)
	if blk != nil || !last {
		t.Fatalf("past-end block = %v,%v", blk, last)
	}
}

func TestDirectFlag(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	// Incoming to c2 from a: direct edge a0->c2.
	blk, _ := s.LoadBlock(lbl(g, "a"), 2, 0)
	if len(blk) != 1 || !blk[0].Direct {
		t.Fatalf("a->c2 = %+v, want direct", blk)
	}
	// Incoming to d4 from a: both at distance >= 2, not direct.
	blk, _ = s.LoadBlock(lbl(g, "a"), 4, 0)
	for _, e := range blk {
		if e.Direct {
			t.Fatalf("a->d4 entry %+v marked direct", e)
		}
	}
}

func TestLoadD(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	d := s.LoadD(lbl(g, "a"), lbl(g, "d"), false)
	if len(d) != 1 || d[0].V != 4 || d[0].Min != 2 {
		t.Fatalf("D[a][d] = %+v, want {4,2}", d)
	}
	// childOnly: no direct a->d edge.
	d = s.LoadD(lbl(g, "a"), lbl(g, "d"), true)
	if len(d) != 0 {
		t.Fatalf("D[a][d] direct = %+v, want empty", d)
	}
	// D[a][c]: c2 min 1 (from a0), c3 min 1 (from a0/a1).
	d = s.LoadD(lbl(g, "a"), lbl(g, "c"), false)
	if len(d) != 2 {
		t.Fatalf("D[a][c] = %+v", d)
	}
	for _, e := range d {
		if e.Min != 1 {
			t.Fatalf("D[a][c] entry %+v, want min 1", e)
		}
	}
}

func TestLoadE(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	e := s.LoadE(lbl(g, "c"), lbl(g, "d"), false)
	// c2 -> d4 dist 1; c3 -> d4 dist 2.
	if len(e) != 2 {
		t.Fatalf("E[c][d] = %+v", e)
	}
	for _, en := range e {
		switch en.From {
		case 2:
			if en.Dist != 1 || en.To != 4 {
				t.Fatalf("E from c2 = %+v", en)
			}
		case 3:
			if en.Dist != 2 || en.To != 4 {
				t.Fatalf("E from c3 = %+v", en)
			}
		default:
			t.Fatalf("unexpected E source %d", en.From)
		}
	}
}

func TestLoadEMinPerSource(t *testing.T) {
	// A source with several targets of one label must yield exactly its
	// minimum.
	b := graph.NewBuilder()
	a := b.AddNode("a")
	b1 := b.AddNode("b")
	b2 := b.AddNode("b")
	x := b.AddNode("x")
	b.AddWeightedEdge(a, b1, 3)
	b.AddEdge(a, x)
	b.AddEdge(x, b2) // distance 2 to b2
	g, _ := b.Build()
	c := closure.Compute(g, closure.Options{})
	s := New(c, 8)
	e := s.LoadE(lbl(g, "a"), lbl(g, "b"), false)
	if len(e) != 1 || e[0].To != b2 || e[0].Dist != 2 {
		t.Fatalf("E[a][b] = %+v, want min (a,b2,2)", e)
	}
}

func TestWildcardMergedIncoming(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	// All incoming to d4 regardless of source label: from a0(2), a1(3),
	// c2(1), c3(2).
	blk, last := s.LoadBlock(label.Wildcard, 4, 0)
	if !last || len(blk) != 4 {
		t.Fatalf("wildcard incoming = %v (last=%v), want 4 entries", blk, last)
	}
	for i := 1; i < len(blk); i++ {
		if blk[i-1].Dist > blk[i].Dist {
			t.Fatalf("wildcard merge unsorted: %v", blk)
		}
	}
	_ = g
}

func TestWildcardD(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	d := s.LoadD(label.Wildcard, lbl(g, "d"), false)
	if len(d) != 1 || d[0].Min != 1 {
		t.Fatalf("D[*][d] = %+v, want min 1 via c2", d)
	}
}

func TestTotalEdgesMatchesClosure(t *testing.T) {
	g := gen.ErdosRenyi(60, 200, 5, 42)
	c := closure.Compute(g, closure.Options{})
	s := New(c, 16)
	if s.TotalEdges() != c.NumEntries() {
		t.Fatalf("TotalEdges = %d, closure = %d", s.TotalEdges(), c.NumEntries())
	}
}

func TestBlockBoundaries(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 3, 43)
	c := closure.Compute(g, closure.Options{})
	s := New(c, 7)
	// Reassemble one long list across blocks and compare totals.
	var v, alpha int32 = -1, -1
	for a := int32(0); int(a) < g.NumLabels(); a++ {
		for n := int32(0); int(n) < g.NumNodes(); n++ {
			if len(s.inList(a, n, nil)) > 14 {
				alpha, v = a, n
				break
			}
		}
	}
	if v < 0 {
		t.Skip("no long list in this instance")
	}
	want := len(s.inList(alpha, v, nil))
	got := 0
	for i := 0; i < s.NumBlocks(alpha, v); i++ {
		blk, last := s.LoadBlock(alpha, v, i)
		got += len(blk)
		if last != (i == s.NumBlocks(alpha, v)-1) {
			t.Fatalf("last flag wrong at block %d", i)
		}
	}
	if got != want {
		t.Fatalf("reassembled %d entries, want %d", got, want)
	}
}

// TestSharedPlaneDerivesOnce races many replicas into the same first
// derives (run with -race, as CI does): every distinct D table, E table,
// and wildcard merge must be derived exactly once process-wide no matter
// how many replicas ask concurrently, with every caller seeing the same
// published slice.
func TestSharedPlaneDerivesOnce(t *testing.T) {
	g := gen.ErdosRenyi(120, 600, 6, 77)
	c := closure.Compute(g, closure.Options{})
	base := New(c, 8)
	const replicas = 8
	stores := make([]*Store, replicas)
	for i := range stores {
		stores[i] = base.Replica()
	}
	nl := int32(g.NumLabels())
	type load struct{ alpha, beta int32 }
	var keys []load
	for a := int32(0); a < nl; a++ {
		for b := int32(0); b < nl; b++ {
			keys = append(keys, load{a, b})
		}
	}
	keys = append(keys, load{label.Wildcard, 0}, load{0, label.Wildcard})
	dGot := make([][][]DEntry, replicas)
	eGot := make([][][]EEntry, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := stores[i]
			for _, k := range keys {
				dGot[i] = append(dGot[i], s.LoadD(k.alpha, k.beta, false))
				eGot[i] = append(eGot[i], s.LoadE(k.alpha, k.beta, false))
			}
			for v := int32(0); int(v) < g.NumNodes(); v += 7 {
				s.LoadBlock(label.Wildcard, v, 0)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < replicas; i++ {
		if !reflect.DeepEqual(dGot[i], dGot[0]) || !reflect.DeepEqual(eGot[i], eGot[0]) {
			t.Fatalf("replica %d saw different derived tables than replica 0", i)
		}
	}
	var derives, hits int64
	for _, s := range stores {
		cnt := s.Counters()
		derives += cnt.TablesRead
		hits += cnt.TableHits
	}
	distinct := int64(2 * len(keys)) // one D and one E table per key
	if derives != distinct {
		t.Fatalf("summed TablesRead = %d, want exactly %d distinct derives", derives, distinct)
	}
	wantCalls := int64(replicas) * distinct
	if derives+hits != wantCalls {
		t.Fatalf("derives %d + hits %d = %d, want %d total loads", derives, hits, derives+hits, wantCalls)
	}
	if c := base.Counters(); c.TablesRead != 0 || c.TableHits != 0 {
		t.Fatalf("base store counters moved (%+v) though only replicas loaded", c)
	}
}

// TestReplicaCountersIsolation proves replica accounting never bleeds:
// I/O charged on one replica must be invisible on the base store and on
// sibling replicas, while derived data stays shared.
func TestReplicaCountersIsolation(t *testing.T) {
	g, c := smallGraph(t)
	base := New(c, 1)
	r1, r2 := base.Replica(), base.Replica()

	r1.LoadD(lbl(g, "a"), lbl(g, "d"), false) // first derive: r1 pays it
	r1.LoadBlock(lbl(g, "a"), 4, 0)
	c1 := r1.Counters()
	if c1.TablesRead != 1 || c1.BlocksRead != 1 {
		t.Fatalf("r1 counters = %+v, want 1 table derive and 1 block", c1)
	}
	for name, s := range map[string]*Store{"base": base, "r2": r2} {
		if cnt := s.Counters(); cnt != (Counters{}) {
			t.Fatalf("%s counters = %+v, want all zero after r1's I/O", name, cnt)
		}
	}

	// The same table from r2 is a plane hit: entries delivered, no derive.
	d2 := r2.LoadD(lbl(g, "a"), lbl(g, "d"), false)
	c2 := r2.Counters()
	if c2.TablesRead != 0 || c2.TableHits != 1 || c2.TableEntriesRead != int64(len(d2)) {
		t.Fatalf("r2 counters = %+v, want a pure plane hit", c2)
	}
	if got := r1.Counters(); got != c1 {
		t.Fatalf("r1 counters moved from %+v to %+v on r2's load", c1, got)
	}

	// ResetCounters on a replica must not disturb siblings.
	r1.ResetCounters()
	if got := r2.Counters(); got != c2 {
		t.Fatalf("r2 counters changed by r1's reset: %+v -> %+v", c2, got)
	}
}

// TestPrivateReplicaRederives pins the detached mode benchmarks rely on:
// a PrivateReplica shares only the layout, so it re-derives tables the
// base already has.
func TestPrivateReplicaRederives(t *testing.T) {
	g, c := smallGraph(t)
	base := New(c, 8)
	base.LoadD(lbl(g, "a"), lbl(g, "d"), false)
	pr := base.PrivateReplica()
	pr.LoadD(lbl(g, "a"), lbl(g, "d"), false)
	if cnt := pr.Counters(); cnt.TablesRead != 1 || cnt.TableHits != 0 {
		t.Fatalf("private replica counters = %+v, want its own derive", cnt)
	}
	shared := base.Replica()
	shared.LoadD(lbl(g, "a"), lbl(g, "d"), false)
	if cnt := shared.Counters(); cnt.TablesRead != 0 || cnt.TableHits != 1 {
		t.Fatalf("shared replica counters = %+v, want a plane hit", cnt)
	}
}

func TestQueryOnlyLabelHasNoTargets(t *testing.T) {
	g, c := smallGraph(t)
	s := New(c, 8)
	// Intern a label after the store is built, as a query with a
	// taxonomy-only label does.
	newID := int32(g.Labels.Intern("query-only-label"))
	if d := s.LoadD(lbl(g, "a"), newID, false); len(d) != 0 {
		t.Fatalf("D for query-only label = %v", d)
	}
	if e := s.LoadE(lbl(g, "a"), newID, false); len(e) != 0 {
		t.Fatalf("E for query-only label = %v", e)
	}
	if blk, last := s.LoadBlock(newID, 0, 0); blk != nil || !last {
		t.Fatalf("block for query-only label = %v,%v", blk, last)
	}
}

// TestLazySourceFaultsOnDemand pins the NewFromSource contract: no table
// is carved at construction, a block read faults exactly the (α, l(v))
// table it needs, and the carved lists answer identically to the eager
// layout's.
func TestLazySourceFaultsOnDemand(t *testing.T) {
	g, c := smallGraph(t)
	eager := New(c, 2)
	lazy := NewFromSource(c, 2)
	if n := lazy.TablesLoaded(); n != 0 {
		t.Fatalf("NewFromSource carved %d tables, want 0", n)
	}
	if eager.TablesLoaded() != int64(c.NumTables()) {
		t.Fatalf("New carved %d tables, want %d", eager.TablesLoaded(), c.NumTables())
	}
	a, cL, dL := lbl(g, "a"), lbl(g, "c"), lbl(g, "d")
	// One block read faults one table.
	want, wantLast := eager.LoadBlock(a, 4, 0)
	got, gotLast := lazy.LoadBlock(a, 4, 0)
	if !reflect.DeepEqual(got, want) || gotLast != wantLast {
		t.Fatalf("lazy block = %v/%v, eager = %v/%v", got, gotLast, want, wantLast)
	}
	if n := lazy.TablesLoaded(); n != 1 {
		t.Fatalf("one block read carved %d tables, want 1", n)
	}
	// A second read of the same table stays resident.
	lazy.LoadBlock(a, 4, 0)
	if n := lazy.TablesLoaded(); n != 1 {
		t.Fatalf("re-read carved more tables: %d", n)
	}
	// Summary tables and wildcard merges agree with the eager layout.
	if got, want := lazy.LoadD(cL, dL, false), eager.LoadD(cL, dL, false); !reflect.DeepEqual(got, want) {
		t.Fatalf("lazy D = %v, eager = %v", got, want)
	}
	gotW, _ := lazy.LoadBlock(label.Wildcard, 4, 0)
	wantW, _ := eager.LoadBlock(label.Wildcard, 4, 0)
	if !reflect.DeepEqual(gotW, wantW) {
		t.Fatalf("lazy wildcard block = %v, eager = %v", gotW, wantW)
	}
	if lazy.TotalEdges() != eager.TotalEdges() {
		t.Fatalf("TotalEdges %d, want %d", lazy.TotalEdges(), eager.TotalEdges())
	}
}

// TestLazySourceConcurrentFaults hammers one lazy store from many
// goroutines (run under -race) and checks every result against the eager
// layout: concurrent first faults of the same table must carve once and
// agree.
func TestLazySourceConcurrentFaults(t *testing.T) {
	g, c := smallGraph(t)
	eager := New(c, 2)
	lazy := NewFromSource(c, 2)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int32(0); int(v) < g.NumNodes(); v++ {
				for a := int32(0); int(a) < g.NumLabels(); a++ {
					for idx := 0; ; idx++ {
						got, gLast := lazy.LoadBlock(a, v, idx)
						want, wLast := eager.LoadBlock(a, v, idx)
						if !reflect.DeepEqual(got, want) || gLast != wLast {
							errs <- "block mismatch"
							return
						}
						if gLast {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	if n, want := lazy.TablesLoaded(), int64(c.NumTables()); n != want {
		t.Fatalf("concurrent faults carved %d tables, want %d", n, want)
	}
}

// TestLazyReplicaSharesCarves pins that replicas share the carved
// layout: a table faulted through one replica is resident for all.
func TestLazyReplicaSharesCarves(t *testing.T) {
	g, c := smallGraph(t)
	base := NewFromSource(c, 2)
	r1, r2 := base.Replica(), base.Replica()
	a := lbl(g, "a")
	r1.LoadBlock(a, 4, 0)
	n := base.TablesLoaded()
	if n == 0 {
		t.Fatal("no table carved")
	}
	r2.LoadBlock(a, 4, 0)
	if base.TablesLoaded() != n || r1.TablesLoaded() != n || r2.TablesLoaded() != n {
		t.Fatal("replicas do not share carved tables")
	}
}

// flakySource wraps a closure source and serves one table short (empty
// while TableLen still reports the real count — the shape of a lazy
// snapshot's fault-time load failure) until healed.
type flakySource struct {
	closure.TableSource
	failAlpha, failBeta int32
	healed              bool
}

func (f *flakySource) Table(alpha, beta int32) []closure.Entry {
	if !f.healed && alpha == f.failAlpha && beta == f.failBeta {
		return nil
	}
	return f.TableSource.Table(alpha, beta)
}

// TestShortCarveRefaults pins the failure-path contract: a carve that
// comes up short (source fault) is served best-effort but never cached —
// neither the incoming lists, nor the D/E summary tables, nor the
// wildcard merges derived over it — so once the source heals, every path
// self-repairs to the eager layout's answers.
func TestShortCarveRefaults(t *testing.T) {
	g, c := smallGraph(t)
	a, d := lbl(g, "a"), lbl(g, "d")
	src := &flakySource{TableSource: c, failAlpha: a, failBeta: d}
	lazy := NewFromSource(src, 2)
	eager := New(c, 2)

	// While the source faults: the failing table reads empty, everything
	// else is unaffected.
	if got, _ := lazy.LoadBlock(a, 4, 0); len(got) != 0 {
		t.Fatalf("failing table served %v", got)
	}
	if n := lazy.TablesLoaded(); n != 0 {
		t.Fatalf("short carve counted as loaded: %d", n)
	}
	wantD := eager.LoadD(a, d, false)
	if bad := lazy.LoadD(a, d, false); len(bad) >= len(wantD) {
		t.Fatalf("derived D over a short carve has %d rows, eager has %d", len(bad), len(wantD))
	}
	badW, _ := lazy.LoadBlock(label.Wildcard, 4, 0)
	wantW, _ := eager.LoadBlock(label.Wildcard, 4, 0)
	if reflect.DeepEqual(badW, wantW) {
		t.Fatal("wildcard merge over a short carve should be missing edges")
	}

	// Source heals: every path must refault and repair, including the
	// derived plane and wildcard merges (nothing was cached).
	src.healed = true
	gotB, _ := lazy.LoadBlock(a, 4, 0)
	wantB, _ := eager.LoadBlock(a, 4, 0)
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("after heal: block %v, want %v", gotB, wantB)
	}
	if got := lazy.LoadD(a, d, false); !reflect.DeepEqual(got, wantD) {
		t.Fatalf("after heal: D %v, want %v", got, wantD)
	}
	gotW, _ := lazy.LoadBlock(label.Wildcard, 4, 0)
	if !reflect.DeepEqual(gotW, wantW) {
		t.Fatalf("after heal: wildcard %v, want %v", gotW, wantW)
	}
	// And the repaired derivation is now cached: the next load is a hit.
	before := lazy.Counters().TableHits
	lazy.LoadD(a, d, false)
	if lazy.Counters().TableHits != before+1 {
		t.Fatal("healed derivation was not published to the plane")
	}
}
