// Quickstart: build a tiny graph, prepare it, run a top-k query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ktpm"
)

func main() {
	// A small supply-chain-ish graph: suppliers ship to factories, which
	// ship to warehouses and stores.
	gb := ktpm.NewGraphBuilder()
	s1 := gb.AddNode("supplier")
	s2 := gb.AddNode("supplier")
	f1 := gb.AddNode("factory")
	f2 := gb.AddNode("factory")
	w1 := gb.AddNode("warehouse")
	st1 := gb.AddNode("store")
	st2 := gb.AddNode("store")

	gb.AddEdge(s1, f1)
	gb.AddEdge(s2, f2)
	gb.AddEdge(f1, w1)
	gb.AddEdge(f2, w1)
	gb.AddEdge(w1, st1)
	gb.AddEdge(w1, st2)
	gb.AddEdge(f1, st2) // a direct factory-to-store shortcut

	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	// BuildDatabase runs the offline pre-computation (the transitive
	// closure with shortest distances).
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Find supplier→(warehouse, store) patterns with the shortest total
	// shipping chains. '//' edges (the default) match any directed path.
	q, err := db.ParseQuery("supplier(warehouse,store)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s over %d matches total\n", q, db.CountMatches(q))

	matches, err := db.TopK(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range matches {
		sup, _ := m.Binding(q, "supplier")
		wh, _ := m.Binding(q, "warehouse")
		sto, _ := m.Binding(q, "store")
		fmt.Printf("top-%d (score %d): supplier %d -> warehouse %d, store %d\n",
			i+1, m.Score, sup, wh, sto)
	}
}
