// Diverse demonstrates incremental streaming and the diverse top-k
// extension (the paper's conclusion raises result diversification as
// future work): instead of k near-identical best matches, return the best
// representative of k different regions of the graph.
//
//	go run ./examples/diverse
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ktpm"
)

func main() {
	// A graph with several "neighborhoods": each has a hub h with s and t
	// satellites at varying distances, so each neighborhood contributes a
	// cluster of similar matches.
	rng := rand.New(rand.NewSource(3))
	gb := ktpm.NewGraphBuilder()
	const neighborhoods = 6
	for i := 0; i < neighborhoods; i++ {
		h := gb.AddNode("h")
		for j := 0; j < 4; j++ {
			s := gb.AddNode("s")
			t := gb.AddNode("t")
			gb.AddWeightedEdge(h, s, int32(1+rng.Intn(3)+i))
			gb.AddWeightedEdge(h, t, int32(1+rng.Intn(3)+i))
		}
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.ParseQuery("h(s,t)")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plain top-5 (clusters around the cheapest hub):")
	plain, _ := db.TopK(q, 5)
	for i, m := range plain {
		fmt.Printf("  top-%d score=%d hub=%d\n", i+1, m.Score, m.Nodes[0])
	}

	fmt.Println("\ndiverse top-5 (no shared nodes between results):")
	diverse, err := db.DiverseTopK(q, 5, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range diverse {
		fmt.Printf("  top-%d score=%d hub=%d\n", i+1, m.Score, m.Nodes[0])
	}

	fmt.Println("\nstreaming the first scores without fixing k up front:")
	st := db.Stream(q)
	for i := 0; i < 3; i++ {
		if m, ok := st.Next(); ok {
			fmt.Printf("  next: score=%d\n", m.Score)
		}
	}
}
