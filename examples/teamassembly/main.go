// Teamassembly models the paper's second motivating scenario: assembling
// a professional team from a LinkedIn-style endorsement network. Nodes are
// people labeled by role; an edge u → v means u has worked under / been
// vouched for by v. A query tree describes the org chart of the team to
// assemble; the top-k matches are the candidate teams whose members have
// the closest working relationships.
//
//	go run ./examples/teamassembly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ktpm"
)

var roles = []string{
	"director", "architect", "backend", "frontend", "qa", "ops",
	"designer", "pm", "data", "security",
}

func main() {
	// Generate a synthetic endorsement network: 400 people, each with a
	// role, endorsed by a few earlier hires (so chains are realistic).
	rng := rand.New(rand.NewSource(42))
	gb := ktpm.NewGraphBuilder()
	const people = 400
	for i := 0; i < people; i++ {
		gb.AddNode(roles[rng.Intn(len(roles))])
	}
	for v := 1; v < people; v++ {
		for d := 0; d < 1+rng.Intn(3); d++ {
			from := int32(rng.Intn(v))
			if from != int32(v) {
				gb.AddEdge(from, int32(v))
			}
		}
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The team to assemble: a director over an architect and a PM; the
	// architect leads a backend and a frontend engineer; the PM works
	// with a designer. '//' edges accept indirect working relationships,
	// scored by their distance.
	q, err := db.ParseQuery("director(architect(backend,frontend),pm(designer))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembling team %s\n", q)
	fmt.Printf("candidate teams in total: %d\n", db.CountMatches(q))

	matches, err := db.TopK(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	if len(matches) == 0 {
		fmt.Println("no complete team found in this network")
		return
	}
	for i, m := range matches {
		fmt.Printf("team #%d (cohesion score %d):\n", i+1, m.Score)
		for pos := 0; pos < q.NumNodes(); pos++ {
			fmt.Printf("  %-9s person %d\n", q.LabelOf(pos), m.Nodes[pos])
		}
	}
	fmt.Println("\nLower scores mean shorter endorsement chains between every")
	fmt.Println("manager and report — teams that have actually worked together.")
}
