// Xmltwig demonstrates the general twig-query features of Section 5 on a
// document-shaped graph: '/' (parent-child) edges, duplicate labels, and
// wildcard (*) nodes — the XML twig-pattern semantics of XPath over graph
// data.
//
//	go run ./examples/xmltwig
package main

import (
	"fmt"
	"log"

	"ktpm"
)

func main() {
	// A bibliography-like document graph. Unlike XML, references make it
	// a DAG: a book's chapter can cite another book's section.
	gb := ktpm.NewGraphBuilder()
	lib := gb.AddNode("library")
	bookA := gb.AddNode("book")
	bookB := gb.AddNode("book")
	chA1 := gb.AddNode("chapter")
	chA2 := gb.AddNode("chapter")
	chB1 := gb.AddNode("chapter")
	secA1 := gb.AddNode("section")
	secA2 := gb.AddNode("section")
	secB1 := gb.AddNode("section")
	fig1 := gb.AddNode("figure")
	tbl1 := gb.AddNode("table")

	for _, e := range [][2]int32{
		{lib, bookA}, {lib, bookB},
		{bookA, chA1}, {bookA, chA2}, {bookB, chB1},
		{chA1, secA1}, {chA2, secA2}, {chB1, secB1},
		{secA1, fig1}, {secB1, tbl1},
		{chA2, secB1}, // a cross-book citation
	} {
		gb.AddEdge(e[0], e[1])
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(queryStr string) {
		q, err := db.ParseQuery(queryStr)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := db.TopK(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s -> %d match(es)", queryStr, len(ms))
		if len(ms) > 0 {
			fmt.Printf(", best score %d, nodes %v", ms[0].Score, ms[0].Nodes)
		}
		fmt.Println()
	}

	// XPath //library//book//section: any descendant path.
	show("library(book(section))")
	// XPath //library/book/chapter/section: strict parent-child steps.
	show("library(/book(/chapter(/section)))")
	// Duplicate labels: two different chapters under one book (the same
	// label at two query positions maps to two data nodes).
	show("book(chapter(section),chapter)")
	// Wildcard: a section containing anything (figure, table, ...).
	show("section(*)")
	// Mixing: a book whose chapter leads to a section with a figure,
	// where the book-chapter step must be direct.
	show("book(/chapter(section(figure)))")
}
