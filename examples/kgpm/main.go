// Kgpm demonstrates top-k graph pattern matching (Section 5 / [7]): the
// query is a cyclic undirected pattern, answered by decomposing it into a
// spanning tree, enumerating tree matches with Topk-EN (mtree+), and
// completing scores with the non-tree edges.
//
//	go run ./examples/kgpm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ktpm"
)

func main() {
	// A collaboration network: authors, venues, and topics with
	// undirected-ish co-occurrence edges (built directed, mirrored
	// internally by the kGPM machinery).
	rng := rand.New(rand.NewSource(7))
	labels := []string{"author", "paper", "venue", "topic", "dataset"}
	gb := ktpm.NewGraphBuilder()
	const n = 300
	for i := 0; i < n; i++ {
		gb.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 3*n; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			gb.AddEdge(u, v)
		}
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	env := db.NewGraphEnv()

	// A triangle with a tail: author-paper-venue closed, paper-topic open.
	pattern := &ktpm.GraphPattern{
		Labels: []string{"author", "paper", "venue", "topic"},
		Edges:  [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}},
	}
	fmt.Println("pattern: author-paper-venue triangle with a topic tail")

	for _, algo := range []ktpm.GraphAlgorithm{ktpm.AlgoMTreePlus, ktpm.AlgoMTree} {
		name := "mtree+"
		if algo == ktpm.AlgoMTree {
			name = "mtree "
		}
		ms, err := env.GraphTopK(pattern, 5, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d match(es)\n", name, len(ms))
		for i, m := range ms {
			fmt.Printf("  top-%d score=%d author=%d paper=%d venue=%d topic=%d\n",
				i+1, m.Score, m.Nodes[0], m.Nodes[1], m.Nodes[2], m.Nodes[3])
		}
	}
	fmt.Println("\nBoth matchers return the same matches; mtree+ retrieves far")
	fmt.Println("less of the closure by loading it in priority order.")
}
