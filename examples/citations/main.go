// Citations reproduces the paper's Figure 1 walkthrough: a twig query
// C(E,S) over a patent citation graph, where C/E/S are Computer Science,
// Economy, and Social Science patents, and a match (x, y, z) means patent
// x's work reached patents y and z — the smaller the total citation
// distance, the more direct the impact.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"

	"ktpm"
)

func main() {
	// Figure 1(b)'s tiny portion of the patent citation graph: three CS
	// patents (v1, v2, v3), two Economy patents (v5, v6), two Social
	// Science patents (v4, v7). Citation edges run from the cited patent
	// to the citing patent, weight 1.
	gb := ktpm.NewGraphBuilder()
	names := []string{"C", "C", "C", "S", "E", "E", "S"}
	ids := make([]int32, len(names))
	for i, n := range names {
		ids[i] = gb.AddNode(n)
	}
	v1, v2, v3, v4, v5, v6, v7 := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]
	for _, e := range [][2]int32{
		{v1, v4}, {v1, v5}, // v1 cited directly by an S and an E patent
		{v2, v6}, {v6, v4}, // v2 reaches S only through E
		{v3, v6}, {v3, v7},
	} {
		gb.AddEdge(e[0], e[1])
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The twig query of Figure 1(a): a CS patent whose work reaches both
	// an Economy and a Social Science patent ('//' semantics).
	q, err := db.ParseQuery("C(E,S)")
	if err != nil {
		log.Fatal(err)
	}
	total := db.CountMatches(q)
	fmt.Printf("twig query %s: %d matches in total\n", q, total)

	matches, err := db.TopK(q, int(total))
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range matches {
		c, _ := m.Binding(q, "C")
		e, _ := m.Binding(q, "E")
		s, _ := m.Binding(q, "S")
		fmt.Printf("top-%d (score %d): patent v%d -> economy v%d, social v%d\n",
			i+1, m.Score, c+1, e+1, s+1)
	}
	fmt.Println("\nThe lowest-score matches are the CS patents with the most")
	fmt.Println("direct combined impact on Economy and Social Science work.")
}
