package ktpm

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	db := paperFig1(t)
	q, _ := db.ParseQuery("C(E,S)")
	p, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Edges) != 2 {
		t.Fatalf("edges = %d", len(p.Edges))
	}
	for _, e := range p.Edges {
		if e.TableEntries <= 0 {
			t.Fatalf("edge %s->%s table empty", e.ParentLabel, e.ChildLabel)
		}
		if e.Kind != "//" {
			t.Fatalf("edge kind = %q", e.Kind)
		}
	}
	if p.EstimatedRuntimeEdges < p.PrunedRuntimeEdges {
		t.Fatalf("raw estimate %d < pruned %d", p.EstimatedRuntimeEdges, p.PrunedRuntimeEdges)
	}
	if p.TotalMatches != db.CountMatches(q) {
		t.Fatalf("TotalMatches = %d", p.TotalMatches)
	}
	s := p.String()
	if !strings.Contains(s, "run-time graph") || !strings.Contains(s, "total matches") {
		t.Fatalf("String() = %q", s)
	}
}

func TestExplainWildcard(t *testing.T) {
	db := paperFig1(t)
	q, _ := db.ParseQuery("C(*)")
	p, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Edges[0].ChildCandidates != db.Graph().NumNodes() {
		t.Fatalf("wildcard candidates = %d", p.Edges[0].ChildCandidates)
	}
	if p.Edges[0].TableEntries <= 0 {
		t.Fatal("wildcard table entries not summed")
	}
}

func TestExplainNilQuery(t *testing.T) {
	db := paperFig1(t)
	if _, err := db.Explain(nil); err == nil {
		t.Fatal("nil query accepted")
	}
}

func TestExplainSlashEdge(t *testing.T) {
	db := paperFig1(t)
	q, _ := db.ParseQuery("C(/E)")
	p, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Edges[0].Kind != "/" {
		t.Fatalf("kind = %q", p.Edges[0].Kind)
	}
}
