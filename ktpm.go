// Package ktpm is a library for top-k tree and graph pattern matching over
// node-labeled directed graphs, reproducing "Optimal Enumeration: Efficient
// Top-k Tree Matching" (Chang et al., PVLDB 8(5), 2015).
//
// Given a rooted query tree T and a data graph G, a tree pattern match
// maps every query node to a data node with the same label and every query
// edge to a directed path; its penalty score is the sum of shortest-path
// distances over the query edges. The library returns the k matches with
// the lowest scores, in non-decreasing score order.
//
// # Quick start
//
//	gb := ktpm.NewGraphBuilder()
//	a := gb.AddNode("a")
//	b := gb.AddNode("b")
//	gb.AddEdge(a, b)
//	g, _ := gb.Build()
//	db, _ := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
//	q, _ := db.ParseQuery("a(b)")
//	matches, _ := db.TopK(q, 10)
//
// # Algorithms
//
// Four kTPM algorithms are available through Options.Algorithm:
//
//   - AlgoTopkEN (default): Algorithm 3 of the paper — optimal Lawler
//     enumeration over a lazily, priority-order loaded run-time graph.
//   - AlgoTopk: Algorithm 1 — the same enumeration over a fully
//     materialized run-time graph.
//   - AlgoDPB, AlgoDPP: the dynamic-programming baselines of Gou &
//     Chirkova (SIGMOD'08), kept for comparison benchmarks.
//
// Queries support '//' (ancestor-descendant) and '/' (parent-child) edges,
// duplicate labels, and wildcard (*) nodes; see ParseQuery. Top-k matching
// of general graph-shaped patterns (kGPM) is exposed via GraphTopK.
//
// # Scaling out
//
// Database.Shard partitions the match space across N shards by root
// binding and scatter-gathers TopK over them with a streaming k-way
// merge; see ShardedDatabase. A Database and every ShardedDatabase built
// from it are safe for concurrent use.
//
// # Snapshots
//
// The offline closure computation is paid once: SaveSnapshot writes a
// page-aligned, offset-indexed KTPMSNAP1 image that OpenSnapshot can
// reopen eagerly, lazily (tables fault in on first touch), or via mmap
// (zero-copy table views) — the lazy modes open in O(directory) time,
// so a daemon restart over a big graph is near-instant. SaveSnapshotAs
// can instead write the columnar KTPMSNAP2 layout (per-table to/dist/
// from columns), which OpenSnapshot detects by magic and serves through
// the store's structure-of-arrays block kernels. All modes and both
// formats answer queries byte-identically to BuildDatabase. SaveDatabase
// and OpenDatabase keep reading the older KTPMTC1 stream format.
package ktpm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ktpm/internal/closure"
	"ktpm/internal/core"
	"ktpm/internal/dp"
	"ktpm/internal/graph"
	"ktpm/internal/kgpm"
	"ktpm/internal/lazy"
	"ktpm/internal/obs"
	"ktpm/internal/query"
	"ktpm/internal/rtg"
	"ktpm/internal/store"
)

// Graph is an immutable node-labeled directed data graph.
type Graph struct {
	g *graph.Graph
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// LabelOf returns the label of node v.
func (g *Graph) LabelOf(v int32) string { return g.g.LabelName(v) }

// GraphBuilder accumulates a graph before freezing it.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder()}
}

// AddNode appends a node with the given label and returns its ID.
func (gb *GraphBuilder) AddNode(label string) int32 { return gb.b.AddNode(label) }

// AddEdge appends a unit-weight directed edge.
func (gb *GraphBuilder) AddEdge(from, to int32) { gb.b.AddEdge(from, to) }

// AddWeightedEdge appends a directed edge with a positive integer weight.
func (gb *GraphBuilder) AddWeightedEdge(from, to, w int32) {
	gb.b.AddWeightedEdge(from, to, w)
}

// SetNodeWeight assigns a non-negative penalty to a node: any match that
// binds a query position to the node adds the penalty to its score (the
// paper's footnote-2 extension of the scoring function). Zero by default.
func (gb *GraphBuilder) SetNodeWeight(v, w int32) { gb.b.SetNodeWeight(v, w) }

// Build validates and freezes the graph.
func (gb *GraphBuilder) Build() (*Graph, error) {
	g, err := gb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadGraph reads a graph in the library's text format ("n <id> <label>" /
// "e <from> <to> [w]" lines).
func LoadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveGraph writes g in the text format.
func SaveGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g.g) }

// DatabaseOptions configures offline preparation.
type DatabaseOptions struct {
	// BlockSize is the simulated disk block size (entries per block) used
	// by the lazy algorithms; 0 means the default.
	BlockSize int
	// MaxDistance, when positive, truncates the transitive closure at the
	// given path length; longer connections are treated as unreachable.
	MaxDistance int32
}

// Database is a data graph prepared for querying: the transitive closure
// with shortest distances (Section 3.1) organized both as label-pair
// tables and in the simulated block store (Section 4.1). The closure is
// accessed through a closure.TableSource, which is either fully resident
// (BuildDatabase, OpenDatabase, eager snapshots) or faulted in from disk
// per table (OpenSnapshot in lazy or mmap mode).
type Database struct {
	g    *graph.Graph
	c    closure.TableSource
	snap *closure.Snapshot // non-nil when opened from a KTPMSNAP1/2 file
	st   *store.Store
	opt  DatabaseOptions
}

// BuildDatabase precomputes the closure of g. This is the offline step of
// Table 2; everything else is query time.
func BuildDatabase(g *Graph, opt DatabaseOptions) (*Database, error) {
	if g == nil || g.g == nil {
		return nil, fmt.Errorf("ktpm: nil graph")
	}
	c := closure.Compute(g.g, closure.Options{MaxDepth: opt.MaxDistance})
	return &Database{
		g:   g.g,
		c:   c,
		st:  store.New(c, opt.BlockSize),
		opt: opt,
	}, nil
}

// Graph returns the underlying data graph.
func (db *Database) Graph() *Graph { return &Graph{g: db.g} }

// SaveDatabase writes a self-contained snapshot — the graph plus its
// precomputed closure — so the offline step is paid once. The layout is a
// length-prefixed graph text section followed by the binary KTPMTC1
// closure stream, which OpenDatabase must parse front to back; prefer
// SaveSnapshot/OpenSnapshot, whose offset-indexed format also supports
// lazy and mmap opening. Kept for compatibility with existing files.
func SaveDatabase(w io.Writer, db *Database) error {
	var gbuf bytes.Buffer
	if err := graph.Encode(&gbuf, db.g); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "KTPMDB1 %d\n", gbuf.Len()); err != nil {
		return err
	}
	if _, err := w.Write(gbuf.Bytes()); err != nil {
		return err
	}
	return closure.Encode(w, db.c)
}

// OpenDatabase reads a snapshot written by SaveDatabase, skipping the
// closure recomputation. BlockSize applies to the rebuilt store; a
// MaxDistance different from the snapshot's is not re-applied.
func OpenDatabase(r io.Reader, opt DatabaseOptions) (*Database, error) {
	br := bufio.NewReader(r)
	var glen int
	if _, err := fmt.Fscanf(br, "KTPMDB1 %d\n", &glen); err != nil {
		return nil, fmt.Errorf("ktpm: bad database header: %w", err)
	}
	gbytes := make([]byte, glen)
	if _, err := io.ReadFull(br, gbytes); err != nil {
		return nil, fmt.Errorf("ktpm: reading graph section: %w", err)
	}
	g, err := graph.Decode(bytes.NewReader(gbytes))
	if err != nil {
		return nil, err
	}
	c, err := closure.Decode(br, g, false)
	if err != nil {
		return nil, err
	}
	return &Database{
		g:   g,
		c:   c,
		st:  store.New(c, opt.BlockSize),
		opt: opt,
	}, nil
}

// SnapshotMode selects how OpenSnapshot backs the closure tables.
type SnapshotMode int

const (
	// SnapshotEager decodes the whole snapshot into memory at open —
	// byte-for-byte the same serving state BuildDatabase reaches, paid up
	// front.
	SnapshotEager SnapshotMode = iota
	// SnapshotLazy opens in O(directory) time; each closure table is
	// seek-read and decoded the first time a query touches it.
	SnapshotLazy
	// SnapshotMMap maps the file and serves zero-copy entry views over
	// the mapping: no heap copy of table payloads, opening in
	// O(directory) time, and the OS page cache shares the bytes across
	// every process mapping the same file. Falls back to SnapshotLazy on
	// platforms without mmap.
	SnapshotMMap
)

// String returns the CLI spelling ("eager", "lazy", "mmap");
// ParseSnapshotMode accepts it back.
func (m SnapshotMode) String() string { return closure.SnapMode(m).String() }

// ParseSnapshotMode resolves the CLI/service spelling of a snapshot mode
// ("eager", "lazy", "mmap", case-insensitive); ok is false for unknown
// names, including the empty string.
func ParseSnapshotMode(name string) (SnapshotMode, bool) {
	switch strings.ToLower(name) {
	case "eager":
		return SnapshotEager, true
	case "lazy":
		return SnapshotLazy, true
	case "mmap":
		return SnapshotMMap, true
	}
	return 0, false
}

// SnapshotOptions configures OpenSnapshot.
type SnapshotOptions struct {
	// Mode selects the table backing; the zero value is SnapshotEager.
	Mode SnapshotMode
	// BlockSize is the simulated disk block size for the rebuilt store;
	// 0 means the default.
	BlockSize int
}

// SnapshotFormat selects the on-disk layout SaveSnapshotAs writes.
type SnapshotFormat int

const (
	// SnapshotV1 is the row-major KTPMSNAP1 layout: each table is a run
	// of (From, To, Dist) triples. The compatibility default.
	SnapshotV1 SnapshotFormat = iota
	// SnapshotV2 is the columnar KTPMSNAP2 layout: each table stores
	// to[], dist[], and from[] as separate contiguous little-endian
	// columns behind the same directory. Databases opened from a v2
	// snapshot serve queries through the store's structure-of-arrays
	// layout and block kernels; results are byte-identical to v1.
	SnapshotV2
)

// String returns the CLI spelling ("v1", "v2"); ParseSnapshotFormat
// accepts it back.
func (f SnapshotFormat) String() string {
	if f == SnapshotV2 {
		return "v2"
	}
	return "v1"
}

// ParseSnapshotFormat resolves the CLI/service spelling of a snapshot
// format ("v1", "v2", case-insensitive); ok is false for unknown names,
// including the empty string.
func ParseSnapshotFormat(name string) (SnapshotFormat, bool) {
	switch strings.ToLower(name) {
	case "v1":
		return SnapshotV1, true
	case "v2":
		return SnapshotV2, true
	}
	return 0, false
}

// SaveSnapshot writes db as a KTPMSNAP1 snapshot: a page-aligned,
// offset-indexed image of the graph and closure with a table directory
// up front, openable eagerly, lazily, or via mmap (see OpenSnapshot).
// Saving from a lazy or mmap database faults every table once; the
// closure is never recomputed. Output is deterministic for a given
// closure.
func SaveSnapshot(w io.Writer, db *Database) error {
	return closure.WriteSnapshot(w, db.c)
}

// SaveSnapshotAs is SaveSnapshot with an explicit on-disk format:
// SnapshotV1 writes the row-major KTPMSNAP1 image, SnapshotV2 the
// columnar KTPMSNAP2 one. OpenSnapshot detects either by magic.
func SaveSnapshotAs(w io.Writer, db *Database, format SnapshotFormat) error {
	if format == SnapshotV2 {
		return closure.WriteSnapshotV2(w, db.c)
	}
	return closure.WriteSnapshot(w, db.c)
}

// OpenSnapshot opens a KTPMSNAP1 or KTPMSNAP2 snapshot written by
// SaveSnapshot or SaveSnapshotAs, detecting the format by magic. In
// SnapshotLazy and SnapshotMMap modes it returns in O(directory) time —
// the graph and table directory are read, but no closure table is
// touched until a query faults it — so a daemon over a big graph starts
// serving immediately. All three modes answer every query byte-identically
// to the BuildDatabase path, at any shard count.
//
// The returned Database is safe for concurrent use like any other, but a
// lazy or mmap database keeps the file (or mapping) open: call Close
// once queries have stopped. Corruption in the header, graph, or
// directory fails here; payload corruption fails at open only in eager
// mode, and in lazy/mmap modes surfaces as an error from SnapshotStats
// once the damaged table faults.
func OpenSnapshot(path string, opt SnapshotOptions) (*Database, error) {
	snap, err := closure.OpenSnapshotFile(path, closure.SnapMode(opt.Mode))
	if err != nil {
		return nil, fmt.Errorf("ktpm: %w", err)
	}
	// A columnar (v2) snapshot is served through the store's
	// structure-of-arrays layout, so the on-disk columns flow into the
	// carved lists and D/E derivations without a row-major detour.
	st := store.NewFromConfig(snap, store.Config{
		BlockSize: opt.BlockSize,
		Columnar:  snap.Version() >= 2,
	})
	if opt.Mode == SnapshotEager {
		st.MaterializeAll()
	}
	return &Database{
		g:    snap.Graph(),
		c:    snap,
		snap: snap,
		st:   st,
		opt:  DatabaseOptions{BlockSize: opt.BlockSize},
	}, nil
}

// Close releases any resources the database holds on the snapshot file
// it was opened from: the descriptor (lazy) or the memory mapping
// (mmap). It must only be called after every query has finished —
// mmap-mode table views point into the mapping. A no-op for databases
// built in memory. Idempotent.
func (db *Database) Close() error {
	if db.snap != nil {
		return db.snap.Close()
	}
	return nil
}

// SnapshotStats describes the snapshot backing of a Database opened with
// OpenSnapshot.
type SnapshotStats struct {
	// Mode is the effective backing mode ("eager", "lazy", "mmap") —
	// what a requested mmap degraded to on platforms without it.
	Mode string `json:"mode"`
	// Format is the on-disk layout the snapshot was written in: "v1"
	// (row-major KTPMSNAP1) or "v2" (columnar KTPMSNAP2).
	Format string `json:"format"`
	// TablesLoaded counts closure tables faulted from the snapshot so
	// far; directly after a lazy or mmap open it is 0.
	TablesLoaded int64 `json:"tables_loaded"`
	// TablesTotal is the directory size.
	TablesTotal int64 `json:"tables_total"`
	// BytesMapped is the live mmap size (0 unless Mode is "mmap").
	BytesMapped int64 `json:"bytes_mapped"`
	// Err reports a fault-time load failure in lazy/mmap mode (the file
	// was damaged underneath the open snapshot); empty when healthy.
	Err string `json:"err,omitempty"`
}

// SnapshotStats returns the snapshot backing state, and ok=false for
// databases not opened from a snapshot.
func (db *Database) SnapshotStats() (SnapshotStats, bool) {
	if db.snap == nil {
		return SnapshotStats{}, false
	}
	st := SnapshotStats{
		Mode:         db.snap.Mode().String(),
		Format:       db.snap.Format(),
		TablesLoaded: db.snap.TablesLoaded(),
		TablesTotal:  int64(db.snap.NumTables()),
		BytesMapped:  db.snap.BytesMapped(),
	}
	if err := db.snap.Err(); err != nil {
		st.Err = err.Error()
	}
	return st, true
}

// IOStats is a snapshot of the simulated disk I/O counters accumulated by
// all queries served from this database (see internal/store): random block
// reads from incoming lists versus wholesale summary-table scans.
type IOStats struct {
	// BlocksRead counts random block reads from incoming lists.
	BlocksRead int64
	// EntriesRead counts every entry delivered (blocks plus tables).
	EntriesRead int64
	// TableEntriesRead counts entries delivered by table scans only.
	TableEntriesRead int64
	// TablesRead counts summary tables materialized from the simulated
	// disk. Each distinct table is derived once process-wide and then
	// served from the shared derived plane, so this stays flat as shard
	// or replica counts grow.
	TablesRead int64
	// TableHits counts table loads served from the shared derived plane
	// without touching the simulated disk.
	TableHits int64
	// TablesLoaded counts closure tables materialized from the table
	// source into the store layout. A database built (or opened) eagerly
	// reports the full table count from the start; one opened with
	// OpenSnapshot in lazy or mmap mode starts at 0 and grows as queries
	// fault tables in. The layout is shared, so this stays flat as shard
	// or replica counts grow.
	TablesLoaded int64
	// SnapshotBytesMapped is the live memory-mapped snapshot size; 0
	// unless the database was opened with SnapshotMMap.
	SnapshotBytesMapped int64
}

// IOStats returns a snapshot of the accumulated simulated I/O counters.
// Counters update atomically, so the snapshot is safe (and meaningful)
// under concurrent queries.
func (db *Database) IOStats() IOStats {
	c := db.st.Counters()
	out := IOStats{
		BlocksRead:       c.BlocksRead,
		EntriesRead:      c.EntriesRead,
		TableEntriesRead: c.TableEntriesRead,
		TablesRead:       c.TablesRead,
		TableHits:        c.TableHits,
		TablesLoaded:     db.st.TablesLoaded(),
	}
	if db.snap != nil {
		out.SnapshotBytesMapped = db.snap.BytesMapped()
	}
	return out
}

// ClosureStats reports the precomputation cost drivers: closure entries,
// label-pair table count, θ (average entries per table) and estimated
// serialized size.
func (db *Database) ClosureStats() (entries int64, tables int, theta float64, sizeBytes int64) {
	s := db.c.ComputeStats()
	return s.Entries, s.Tables, s.Theta, s.SizeBytes
}

// Query is a parsed rooted query tree.
type Query struct {
	t *query.Tree
}

// ParseQuery parses the compact tree syntax: "a(b,c(d))" is a root a with
// children b and c, c having child d; a leading '/' marks a parent-child
// edge ("a(/b)") and '*' is a wildcard label. All other edges are '//'.
//
// Labels the data graph has never seen are resolved in a private overlay
// that is garbage-collected with the query, so parsing untrusted query
// strings (the ktpmd daemon's workload) cannot grow the graph's label
// table; such labels simply match nothing.
func (db *Database) ParseQuery(s string) (*Query, error) {
	t, err := query.Parse(db.g.Labels.Extend(), s)
	if err != nil {
		return nil, err
	}
	return &Query{t: t}, nil
}

// NumNodes returns the query size n_T.
func (q *Query) NumNodes() int { return q.t.NumNodes() }

// String renders the query back in the parser syntax.
func (q *Query) String() string { return q.t.String() }

// Canonical renders the query with the children of every node sorted, so
// queries that differ only in sibling order ("a(b,c)" vs "a(c,b)") produce
// the same string. Sibling order never affects which matches exist or
// their scores — only the BFS numbering of positions — which makes the
// canonical form a sound result-cache key. Parsing the canonical string
// yields a query whose positions agree with the rendering.
func (q *Query) Canonical() string { return q.t.Canonical() }

// LabelOf returns the label of query position i (BFS order).
func (q *Query) LabelOf(i int) string { return q.t.LabelName(int32(i)) }

// Algorithm selects a kTPM implementation.
type Algorithm int

const (
	// AlgoTopkEN is Algorithm 3 (Topk-EN), the default.
	AlgoTopkEN Algorithm = iota
	// AlgoTopk is Algorithm 1 (Topk) over the materialized run-time graph.
	AlgoTopk
	// AlgoDPB is the DP-B baseline of [21].
	AlgoDPB
	// AlgoDPP is the DP-P baseline of [21].
	AlgoDPP
)

// ParseAlgorithm resolves the CLI/service spelling of an algorithm name
// ("topk-en", "topk", "dp-b", "dp-p", case-insensitive); ok is false for
// unknown names, including the empty string — callers that want a
// default decide it themselves.
func ParseAlgorithm(name string) (Algorithm, bool) {
	switch strings.ToLower(name) {
	case "topk-en":
		return AlgoTopkEN, true
	case "topk":
		return AlgoTopk, true
	case "dp-b":
		return AlgoDPB, true
	case "dp-p":
		return AlgoDPP, true
	}
	return 0, false
}

// String returns the paper's spelling of the algorithm name ("Topk-EN",
// "Topk", "DP-B", "DP-P"); ParseAlgorithm accepts it back.
func (a Algorithm) String() string {
	switch a {
	case AlgoTopkEN:
		return "Topk-EN"
	case AlgoTopk:
		return "Topk"
	case AlgoDPB:
		return "DP-B"
	case AlgoDPP:
		return "DP-P"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options tunes a single TopK or Stream call.
type Options struct {
	Algorithm Algorithm
	// RootFilter, when non-nil, restricts results to matches whose root
	// position binds a data node the filter accepts; other positions are
	// unaffected. Because every match binds the root to exactly one data
	// node, filters over disjoint vertex sets partition the match space.
	// Supported by the Topk-EN paths (TopK, TopKWith, Stream, StreamWith,
	// and their sharded forms, where it composes with — restricts within —
	// shard ownership); the materialized and DP algorithms reject it.
	RootFilter func(v int32) bool
	// Trace, when non-nil, parents the call's trace spans: the Topk-EN
	// paths record "table_fault" spans around store carves and derives,
	// and sharded execution adds a "shard_merge" span with per-shard
	// "shard_enumerate" children. The materialized and DP algorithms
	// ignore it. Nil disables tracing at zero cost.
	Trace *Span
}

// Span is a request-scoped trace span (see internal/obs): the server
// threads one through Options.Trace so /query?debug=1 and /debug/traces
// can attribute time to stages. Embedders may create their own with
// NewTraceSpan.
type Span = obs.Span

// NewTraceSpan starts a root trace span, for embedders that want stage
// timing outside ktpmd: pass it via Options.Trace, End it after the
// call, and inspect it with its Snapshot method.
func NewTraceSpan(name string) *Span { return obs.StartRoot(name) }

// Match is one result: Nodes[i] is the data node matched to query position
// i (the query's BFS order), and Score is the penalty (Definition 2.2).
type Match struct {
	Nodes []int32
	Score int64
}

func (m *Match) binding(q *Query, label string) (int32, bool) {
	for i := 0; i < q.NumNodes(); i++ {
		if q.LabelOf(i) == label {
			return m.Nodes[i], true
		}
	}
	return 0, false
}

// Binding returns the data node matched to the query position with the
// given label; ok is false when no position carries the label. Intended
// for distinct-label queries, where the binding is unique.
func (m *Match) Binding(q *Query, label string) (int32, bool) { return m.binding(q, label) }

// TopK returns the k best matches with the default algorithm (Topk-EN).
func (db *Database) TopK(q *Query, k int) ([]Match, error) {
	return db.TopKWith(q, k, Options{})
}

// TopKWith returns the k best matches using the selected algorithm. All
// algorithms return the same score sequence; they differ in cost.
// AlgoTopkEN (the default) additionally returns the canonical order —
// non-decreasing score, equal scores ordered by node bindings, the tie
// group at the k-th score drained in full — so its result is a pure
// function of the store contents, byte-identical to what a
// ShardedDatabase returns at any shard count.
func (db *Database) TopKWith(q *Query, k int, opt Options) ([]Match, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if k < 0 {
		return nil, fmt.Errorf("ktpm: negative k")
	}
	if opt.RootFilter != nil && opt.Algorithm != AlgoTopkEN {
		return nil, fmt.Errorf("ktpm: RootFilter requires Topk-EN, got %v", opt.Algorithm)
	}
	switch opt.Algorithm {
	case AlgoTopkEN:
		ms := lazy.TopKCanonical(db.st, q.t, k, lazy.Options{RootFilter: opt.RootFilter, Trace: opt.Trace})
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Nodes: m.Nodes, Score: m.Score}
		}
		return out, nil
	case AlgoTopk:
		r := rtg.Build(db.c, q.t)
		ms := core.TopK(r, k)
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Nodes: m.Nodes, Score: m.Score}
		}
		return out, nil
	case AlgoDPB:
		r := rtg.Build(db.c, q.t)
		ms := dp.TopK(r, k)
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Nodes: m.Nodes, Score: m.Score}
		}
		return out, nil
	case AlgoDPP:
		ms := dp.TopKLazy(db.st, q.t, k)
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Nodes: m.Nodes, Score: m.Score}
		}
		return out, nil
	}
	return nil, fmt.Errorf("ktpm: unknown algorithm %v", opt.Algorithm)
}

// MatchStream is an incremental enumeration of matches in non-decreasing
// score order, for consumers that do not know k up front. Both *Stream
// (single database) and *ShardStream (scatter-gather) implement it; the
// server's NDJSON /stream endpoint is written against this interface.
// Consumers that stop before exhaustion must call Close.
type MatchStream interface {
	// Next returns the next match; ok is false when the space is
	// exhausted or the stream is closed.
	Next() (Match, bool)
	// Close releases any resources held by the enumeration. Idempotent.
	Close()
}

// Stream incrementally enumerates matches using Topk-EN in the same
// canonical order TopK returns — non-decreasing score, equal scores
// ordered by node bindings — for consumers that do not know k up front.
// Drained to any k it is byte-identical to TopK(q, k).
type Stream struct {
	cs *lazy.CanonicalStream
}

// Stream opens an incremental enumeration of q.
func (db *Database) Stream(q *Query) *Stream {
	return &Stream{cs: lazy.NewCanonicalStream(lazy.New(db.st, q.t, lazy.Options{}))}
}

// StreamWith opens an incremental enumeration of q with options, so
// RootFilter applies to streaming too. Streaming is inherently lazy:
// only AlgoTopkEN supports it, and any other Algorithm is an error.
func (db *Database) StreamWith(q *Query, opt Options) (*Stream, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if opt.Algorithm != AlgoTopkEN {
		return nil, fmt.Errorf("ktpm: streaming requires Topk-EN, got %v", opt.Algorithm)
	}
	return &Stream{cs: lazy.NewCanonicalStream(lazy.New(db.st, q.t, lazy.Options{RootFilter: opt.RootFilter, Trace: opt.Trace}))}, nil
}

// OpenStream is StreamWith behind the MatchStream interface, the form
// the server's Backend contract uses so single and sharded databases
// interchange.
func (db *Database) OpenStream(q *Query, opt Options) (MatchStream, error) {
	return db.StreamWith(q, opt)
}

// Next returns the next match in canonical order; ok is false when the
// space is exhausted.
func (s *Stream) Next() (Match, bool) {
	m, ok := s.cs.Next()
	if !ok {
		return Match{}, false
	}
	return Match{Nodes: m.Nodes, Score: m.Score}, true
}

// Close implements MatchStream. A single-database enumeration holds no
// goroutines or external resources, so this is a no-op; it exists so
// *Stream satisfies the interface the sharded stream needs.
func (s *Stream) Close() {}

// BatchItem is one query of a TopKBatch call.
type BatchItem struct {
	Query *Query
	K     int
	Opt   Options
}

// BatchResult is one item's outcome in a TopKBatch call.
type BatchResult struct {
	// Matches is the item's top-k answer. Items deduplicated against an
	// earlier identical item share the same underlying slice; treat it as
	// immutable.
	Matches []Match
	// Shared marks an item whose result was reused from an earlier
	// canonical-identical item in the same batch instead of enumerated.
	Shared bool
	// Cost is the database-wide EntriesRead delta observed around this
	// item's enumeration — the simulated-I/O price of computing it, the
	// signal cost-aware cache admission keys on. Shared items report the
	// cost of the enumeration they reused. Under concurrent traffic the
	// delta may include other queries' reads, an overestimate only.
	Cost int64
	// Partial marks a result degraded by a distributed backend: a dead
	// worker shard was dropped under the coordinator's partial policy, so
	// Matches covers only the surviving shards. Always false for local
	// execution.
	Partial bool
	// Err is the item's failure; other items are unaffected.
	Err error
}

// TopKBatch answers many queries in one call, amortizing per-query
// overheads: items whose canonical form, k, and algorithm agree are
// enumerated once and share the result, and every item warms the same
// derived-data plane, so D/E tables a batch touches repeatedly are
// derived at most once. Items with a RootFilter are never deduplicated
// (filter identity is unknowable). Results align with items; a failed
// item carries its own Err and does not disturb the rest.
//
// A shared result's Nodes follow the *first* occurrence's position
// numbering. Canonical-identical queries can still number positions
// differently when their sibling order differs; callers that need a
// fixed numbering should parse Query.Canonical themselves, as the
// server's /batch endpoint does.
func (db *Database) TopKBatch(items []BatchItem) []BatchResult {
	return runBatch(items, db.IOStats, db.TopKWith)
}

// batchKey is the dedup identity of a batch item; ok is false when the
// item must not be deduplicated.
func batchKey(it BatchItem) (string, bool) {
	if it.Query == nil || it.Query.t == nil || it.Opt.RootFilter != nil {
		return "", false
	}
	return it.Query.Canonical() + "\x00" + strconv.Itoa(it.K) + "\x00" + it.Opt.Algorithm.String(), true
}

// runBatch is the shared TopKBatch engine: run computes one item, stats
// snapshots the I/O counters that price it.
func runBatch(items []BatchItem, stats func() IOStats, run func(*Query, int, Options) ([]Match, error)) []BatchResult {
	out := make([]BatchResult, len(items))
	seen := make(map[string]int, len(items)) // key -> index of first occurrence
	for i, it := range items {
		key, dedupable := batchKey(it)
		if dedupable {
			if first, ok := seen[key]; ok {
				out[i] = out[first]
				out[i].Shared = true
				continue
			}
		}
		before := stats().EntriesRead
		ms, err := run(it.Query, it.K, it.Opt)
		out[i] = BatchResult{Matches: ms, Cost: stats().EntriesRead - before, Err: err}
		if dedupable && err == nil {
			seen[key] = i
		}
	}
	return out
}

// CountMatches returns the total number of matches of q — the quantity
// that motivates top-k processing (it is frequently astronomically large).
func (db *Database) CountMatches(q *Query) int64 {
	return core.CountMatches(rtg.Build(db.c, q.t))
}

// DiverseTopK returns up to k matches in non-decreasing score order such
// that no two returned matches share more than maxShared data nodes — the
// "diverse top-k results" direction the paper's conclusion raises as
// future work. It streams matches with Topk-EN and greedily keeps the
// first (hence lowest-scoring) representative of each region; maxExamined
// bounds how many matches are inspected (0 means 100·k).
func (db *Database) DiverseTopK(q *Query, k, maxShared, maxExamined int) ([]Match, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if maxShared < 0 || maxShared >= q.NumNodes() {
		return nil, fmt.Errorf("ktpm: maxShared must be in [0, numNodes)")
	}
	if maxExamined <= 0 {
		maxExamined = 100 * k
	}
	st := db.Stream(q)
	var kept []Match
	for examined := 0; len(kept) < k && examined < maxExamined; examined++ {
		m, ok := st.Next()
		if !ok {
			break
		}
		diverse := true
		for _, prev := range kept {
			shared := 0
			for i := range m.Nodes {
				for _, pv := range prev.Nodes {
					if m.Nodes[i] == pv {
						shared++
						break
					}
				}
			}
			if shared > maxShared {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, m)
		}
	}
	return kept, nil
}

// Taxonomy is a label subsumption hierarchy for containment matching
// (Section 5, third extension): a query node labeled with a taxonomy
// label matches any data node whose label the taxonomy places below it.
// Every label implicitly contains itself.
type Taxonomy struct {
	children map[string][]string
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{children: make(map[string][]string)}
}

// AddSubsumption declares that parent contains child (directly). Cycles
// are tolerated; containment is the reflexive-transitive closure.
func (tx *Taxonomy) AddSubsumption(parent, child string) {
	tx.children[parent] = append(tx.children[parent], child)
}

// Contains returns every label name contained by name, including itself.
func (tx *Taxonomy) Contains(name string) []string {
	seen := map[string]bool{name: true}
	order := []string{name}
	for head := 0; head < len(order); head++ {
		for _, c := range tx.children[order[head]] {
			if !seen[c] {
				seen[c] = true
				order = append(order, c)
			}
		}
	}
	return order
}

// TopKContained answers q under containment semantics: each query label
// matches the data labels tx places at or below it. Served by the
// materializing Algorithm 1 (the run-time graph expansion happens at
// identification time).
func (db *Database) TopKContained(q *Query, k int, tx *Taxonomy) ([]Match, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if tx == nil {
		return db.TopKWith(q, k, Options{Algorithm: AlgoTopk})
	}
	contains := func(queryLabel int32) []int32 {
		var out []int32
		seen := map[int32]bool{}
		// Resolve through the query's interner: a taxonomy-only label is in
		// the query's parse overlay, not the graph's table.
		for _, name := range tx.Contains(q.t.Labels.Name(int(queryLabel))) {
			if id, ok := db.g.Labels.Lookup(name); ok && !seen[int32(id)] {
				seen[int32(id)] = true
				out = append(out, int32(id))
			}
		}
		return out
	}
	r := rtg.BuildWithContainment(db.c, q.t, contains)
	ms := core.TopK(r, k)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Nodes: m.Nodes, Score: m.Score}
	}
	return out, nil
}

// GraphPattern is a connected undirected labeled pattern graph with
// distinct node labels, the query form of top-k graph pattern matching.
type GraphPattern struct {
	// Labels holds one label per pattern node.
	Labels []string
	// Edges are undirected node-index pairs.
	Edges [][2]int
}

// GraphAlgorithm selects the inner tree matcher for GraphTopK.
type GraphAlgorithm int

const (
	// AlgoMTreePlus embeds Topk-EN in the decomposition framework of [7].
	AlgoMTreePlus GraphAlgorithm = iota
	// AlgoMTree is the [7] baseline with DP-B inside.
	AlgoMTree
)

// GraphEnv caches per-graph state for repeated GraphTopK calls (the
// undirected closure is the expensive part).
type GraphEnv struct {
	env *kgpm.Env
}

// NewGraphEnv prepares the kGPM environment for db's graph.
func (db *Database) NewGraphEnv() *GraphEnv {
	return &GraphEnv{env: kgpm.NewEnv(db.g)}
}

// GraphTopK returns the k best graph pattern matches. Nodes[i] of each
// match corresponds to pattern node i.
func (ge *GraphEnv) GraphTopK(p *GraphPattern, k int, algo GraphAlgorithm) ([]Match, error) {
	q := &kgpm.Query{Labels: p.Labels, Edges: p.Edges}
	a := kgpm.MTreePlus
	if algo == AlgoMTree {
		a = kgpm.MTree
	}
	ms, err := kgpm.TopK(ge.env, q, k, a)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Nodes: m.Nodes, Score: m.Score}
	}
	return out, nil
}
