package ktpm

import (
	"reflect"
	"testing"
)

// TestTopKBatchDedup pins the batch amortization contract: items whose
// canonical form, k, and algorithm agree are enumerated once — the
// duplicates share the leader's result slice and are marked Shared —
// and every item's answer equals the equivalent individual TopK call.
func TestTopKBatchDedup(t *testing.T) {
	db := randomDatabase(t, 90, 3)
	qa, err := db.ParseQuery("a(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	// Same canonical form, different sibling order: must dedupe.
	qaPerm, err := db.ParseQuery("a(c,b)")
	if err != nil {
		t.Fatal(err)
	}
	qb, err := db.ParseQuery("b(c)")
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Query: qa, K: 10},
		{Query: qaPerm, K: 10}, // dup of item 0 via canonical form
		{Query: qb, K: 5},
		{Query: qa, K: 10}, // dup of item 0
		{Query: qa, K: 3},  // different k: own enumeration
	}
	before := db.IOStats().EntriesRead
	results := db.TopKBatch(items)
	batchCost := db.IOStats().EntriesRead - before
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want, err := db.TopKWith(items[i].Query, items[i].K, items[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameScores(r.Matches, want) {
			t.Fatalf("item %d differs from individual TopK", i)
		}
	}
	for i, wantShared := range []bool{false, true, false, true, false} {
		if results[i].Shared != wantShared {
			t.Fatalf("item %d Shared = %v, want %v", i, results[i].Shared, wantShared)
		}
	}
	// Shared items literally reuse the leader's slice.
	if &results[0].Matches[0] != &results[1].Matches[0] || &results[0].Matches[0] != &results[3].Matches[0] {
		t.Fatal("shared items did not reuse the leader's result slice")
	}
	// Three enumerations ran (items 0, 2, 4); their costs cover the whole
	// batch delta — duplicates added no I/O.
	if sum := results[0].Cost + results[2].Cost + results[4].Cost; sum != batchCost {
		t.Fatalf("per-item costs sum to %d, batch delta is %d", sum, batchCost)
	}
	if results[0].Cost != results[1].Cost {
		t.Fatal("shared item does not report the leader's cost")
	}
}

// sameScores compares matches by score sequence: the single-database
// path's tie order is unspecified, so byte comparison is only valid
// where both sides are canonical.
func sameScores(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestTopKBatchErrorIsolation checks per-item failure isolation: a nil
// query fails its own item and leaves the rest intact, and an item
// erroring never becomes a dedup leader.
func TestTopKBatchErrorIsolation(t *testing.T) {
	db := randomDatabase(t, 90, 3)
	q, err := db.ParseQuery("a(b)")
	if err != nil {
		t.Fatal(err)
	}
	results := db.TopKBatch([]BatchItem{
		{Query: q, K: 5},
		{Query: nil, K: 5},
		{Query: q, K: -1}, // negative k errors
		{Query: q, K: 5},  // still dedupes against item 0
	})
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("valid items failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatal("invalid items did not fail")
	}
	if !results[3].Shared {
		t.Fatal("duplicate valid item not shared")
	}
	if len(results[0].Matches) == 0 {
		t.Fatal("valid item returned no matches")
	}
}

// TestShardedTopKBatch checks the sharded batch: results are the
// sharded (canonical) answers, and dedup works across the scatter-gather
// path.
func TestShardedTopKBatch(t *testing.T) {
	db := randomDatabase(t, 90, 17)
	sdb, err := db.Shard(3, PartitionByLabel())
	if err != nil {
		t.Fatal(err)
	}
	q, err := sdb.ParseQuery("a(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sdb.TopK(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	results := sdb.TopKBatch([]BatchItem{
		{Query: q, K: 12},
		{Query: q, K: 12},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Matches, want) {
			t.Fatalf("item %d differs from sharded TopK", i)
		}
	}
	if results[0].Shared || !results[1].Shared {
		t.Fatalf("Shared flags = %v/%v, want false/true", results[0].Shared, results[1].Shared)
	}
}
