package ktpm

import (
	"fmt"
	"strings"

	"ktpm/internal/graph"
	"ktpm/internal/lazy"
	"ktpm/internal/shard"
)

// Partitioner assigns every data-graph vertex to one of n shards of a
// ShardedDatabase, fixing which shard enumerates the matches rooted at
// that vertex. Implementations must be deterministic.
type Partitioner interface {
	// Partition returns the shard assignment: out[v] in [0, n) for every
	// node v of g.
	Partition(g *Graph, n int) []int32
	// Name identifies the strategy in flags, logs, and /stats.
	Name() string
}

// PartitionByHash returns the default partitioner: vertices spread by a
// multiplicative hash of their IDs. Total vertex counts balance well, but
// a rare label's candidates can clump onto few shards.
func PartitionByHash() Partitioner { return hashPartitioner{} }

// PartitionByLabel returns the label-aware partitioner: each label's
// vertices are dealt round-robin across shards, so the root-candidate set
// of any query label splits near-evenly regardless of label skew.
func PartitionByLabel() Partitioner { return labelPartitioner{} }

// ParsePartitioner resolves the CLI/service spelling of a partitioner
// name ("hash", "label", case-insensitive); ok is false for unknown
// names, including the empty string. It accepts the same names as
// shard.Parse (TestParsePartitionerCoversShardParse keeps them in sync).
func ParsePartitioner(name string) (Partitioner, bool) {
	switch strings.ToLower(name) {
	case "hash":
		return hashPartitioner{}, true
	case "label":
		return labelPartitioner{}, true
	}
	return nil, false
}

type hashPartitioner struct{}

func (hashPartitioner) Partition(g *Graph, n int) []int32 { return shard.Hash{}.Partition(g.g, n) }
func (hashPartitioner) Name() string                      { return shard.Hash{}.Name() }

type labelPartitioner struct{}

func (labelPartitioner) Partition(g *Graph, n int) []int32 {
	return shard.LabelBalanced{}.Partition(g.g, n)
}
func (labelPartitioner) Name() string { return shard.LabelBalanced{}.Name() }

// partitionerAdapter lets a user-supplied Partitioner (over the public
// Graph) drive the internal shard machinery.
type partitionerAdapter struct{ p Partitioner }

func (a partitionerAdapter) Partition(g *graph.Graph, n int) []int32 {
	return a.p.Partition(&Graph{g: g}, n)
}
func (a partitionerAdapter) Name() string { return a.p.Name() }

// ShardedDatabase partitions a Database's match space across n shards and
// scatter-gathers TopK across them: every match binds the query root to
// exactly one data node, so assigning each vertex to one shard splits the
// match space disjointly; each shard enumerates its slice concurrently
// (over a private store replica, so shards share no locks and keep their
// own I/O counters) and a bounded streaming k-way merge gathers the
// global top k, ceasing to pull from a shard once its best possible
// remaining score cannot beat the current k-th result.
//
// Results are deterministic: all matches scoring strictly below the k-th
// score are included and equal scores order by node bindings, so the
// answer is byte-identical for every shard count and partitioner. A
// ShardedDatabase is safe for concurrent use, like the Database it wraps,
// which remains valid and may keep serving unsharded queries.
type ShardedDatabase struct {
	db *Database
	sd *shard.DB
}

// Shard partitions db's match space across n shards using p (nil means
// PartitionByHash). The transitive closure is shared, not recomputed:
// only per-shard store caches and counters are allocated.
func (db *Database) Shard(n int, p Partitioner) (*ShardedDatabase, error) {
	if n < 1 {
		return nil, fmt.Errorf("ktpm: shard count %d, want >= 1", n)
	}
	if p == nil {
		p = PartitionByHash()
	}
	sd, err := shard.New(db.st, n, partitionerAdapter{p})
	if err != nil {
		return nil, fmt.Errorf("ktpm: %w", err)
	}
	return &ShardedDatabase{db: db, sd: sd}, nil
}

// NumShards returns the shard count.
func (s *ShardedDatabase) NumShards() int { return s.sd.NumShards() }

// Graph returns the underlying data graph.
func (s *ShardedDatabase) Graph() *Graph { return s.db.Graph() }

// ParseQuery parses the compact tree syntax; see Database.ParseQuery.
func (s *ShardedDatabase) ParseQuery(qs string) (*Query, error) { return s.db.ParseQuery(qs) }

// Explain analyzes q without enumerating matches; see Database.Explain.
// The plan describes the shared closure, which sharding does not change.
func (s *ShardedDatabase) Explain(q *Query) (*Plan, error) { return s.db.Explain(q) }

// TopK returns the k best matches, scatter-gathered across the shards
// with Topk-EN.
func (s *ShardedDatabase) TopK(q *Query, k int) ([]Match, error) {
	return s.TopKWith(q, k, Options{})
}

// TopKWith returns the k best matches using the selected algorithm.
// AlgoTopkEN (the default) scatter-gathers across the shards; the
// materialized and DP baselines exist for single-database comparison
// benchmarks and are served unsharded by the wrapped Database. All
// algorithms return the same score sequence. A RootFilter composes with
// (restricts within) shard ownership on the scatter-gather path.
func (s *ShardedDatabase) TopKWith(q *Query, k int, opt Options) ([]Match, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if k < 0 {
		return nil, fmt.Errorf("ktpm: negative k")
	}
	if opt.Algorithm != AlgoTopkEN {
		return s.db.TopKWith(q, k, opt)
	}
	ms := s.sd.TopKOpts(q.t, k, lazy.Options{RootFilter: opt.RootFilter, Trace: opt.Trace})
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Nodes: m.Nodes, Score: m.Score}
	}
	return out, nil
}

// TopKBatch answers many queries in one call; see Database.TopKBatch.
// Default-algorithm items scatter-gather across the shards; every item
// warms the shared derived-data plane, so a batch derives each distinct
// table at most once no matter how many items touch it.
func (s *ShardedDatabase) TopKBatch(items []BatchItem) []BatchResult {
	return runBatch(items, s.IOStats, s.TopKWith)
}

// SetGatherChunkSize tunes the scatter-gather transport: how many
// matches a shard accumulates before handing them to the coordinator in
// one channel operation. Values below 1 restore the default
// (shard.DefaultChunkSize, chosen from the BENCH_topk.json chunk-size
// sweep). The chunk size never affects results — only the number of
// channel synchronizations per query and the bounded work a shard may
// compute past the termination threshold. Safe to call while serving;
// in-flight queries keep the size they started with.
func (s *ShardedDatabase) SetGatherChunkSize(n int) { s.sd.SetChunkSize(n) }

// GatherChunkSize returns the current scatter-gather transport chunk
// size.
func (s *ShardedDatabase) GatherChunkSize() int { return s.sd.ChunkSize() }

// ShardStream incrementally enumerates matches scatter-gathered across
// the shards in the canonical order ShardedDatabase.TopK returns:
// non-decreasing score, equal scores ordered by node bindings. Drained
// to any k it is byte-identical to TopK(q, k). Close stops the per-shard
// producer goroutines; consumers that do not drain to exhaustion must
// call it (defer st.Close() is the idiom).
type ShardStream struct {
	st *shard.Stream
}

// Stream opens an incremental scatter-gather enumeration of q.
func (s *ShardedDatabase) Stream(q *Query) (*ShardStream, error) {
	return s.StreamWith(q, Options{})
}

// StreamWith is Stream with options: RootFilter composes with shard
// ownership. Streaming is inherently lazy: only AlgoTopkEN supports it,
// and any other Algorithm is an error.
func (s *ShardedDatabase) StreamWith(q *Query, opt Options) (*ShardStream, error) {
	if q == nil || q.t == nil {
		return nil, fmt.Errorf("ktpm: nil query")
	}
	if opt.Algorithm != AlgoTopkEN {
		return nil, fmt.Errorf("ktpm: streaming requires Topk-EN, got %v", opt.Algorithm)
	}
	return &ShardStream{st: s.sd.Stream(q.t, lazy.Options{RootFilter: opt.RootFilter, Trace: opt.Trace})}, nil
}

// OpenStream is StreamWith behind the MatchStream interface; see
// Database.OpenStream.
func (s *ShardedDatabase) OpenStream(q *Query, opt Options) (MatchStream, error) {
	return s.StreamWith(q, opt)
}

// Next returns the next match in canonical order; ok is false when the
// space is exhausted or the stream is closed.
func (ss *ShardStream) Next() (Match, bool) {
	m, ok := ss.st.Next()
	if !ok {
		return Match{}, false
	}
	return Match{Nodes: m.Nodes, Score: m.Score}, true
}

// Close stops the per-shard producers. Idempotent.
func (ss *ShardStream) Close() { ss.st.Close() }

// IOStats returns the simulated-I/O counters summed over every shard
// store plus the wrapped Database's own store (which serves the non-default
// algorithms).
func (s *ShardedDatabase) IOStats() IOStats {
	c := s.sd.Counters()
	base := s.db.IOStats()
	return IOStats{
		BlocksRead:       base.BlocksRead + c.BlocksRead,
		EntriesRead:      base.EntriesRead + c.EntriesRead,
		TableEntriesRead: base.TableEntriesRead + c.TableEntriesRead,
		TablesRead:       base.TablesRead + c.TablesRead,
		TableHits:        base.TableHits + c.TableHits,
		// The layout (and with it the snapshot backing) is shared by every
		// shard replica, so these are properties of the database, not sums.
		TablesLoaded:        base.TablesLoaded,
		SnapshotBytesMapped: base.SnapshotBytesMapped,
	}
}

// SnapshotStats reports the wrapped Database's snapshot backing (the
// layout is shared by every shard replica, so there is exactly one); ok
// is false when the database was not opened from a snapshot.
func (s *ShardedDatabase) SnapshotStats() (SnapshotStats, bool) { return s.db.SnapshotStats() }

// ShardStats describes one shard of a ShardedDatabase in /stats.
type ShardStats struct {
	// Vertices is how many data-graph vertices the shard owns, i.e. how
	// many root bindings it is responsible for.
	Vertices int `json:"vertices"`
	// Merged counts the matches this shard has contributed to
	// scatter-gather merges.
	Merged int64 `json:"merged"`
	// IO is the shard store's private simulated-I/O counters.
	IO IOStats `json:"io"`
}

// ShardingStats summarizes a ShardedDatabase for /stats.
type ShardingStats struct {
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	// ChunkSize is the gather transport's matches-per-channel-op setting
	// (ktpmd -chunk-size).
	ChunkSize int          `json:"chunk_size"`
	PerShard  []ShardStats `json:"per_shard"`
}

// ShardStats returns the per-shard counters.
func (s *ShardedDatabase) ShardStats() ShardingStats {
	st := ShardingStats{
		Shards:      s.sd.NumShards(),
		Partitioner: s.sd.PartitionerName(),
		ChunkSize:   s.sd.ChunkSize(),
		PerShard:    make([]ShardStats, s.sd.NumShards()),
	}
	for i := range st.PerShard {
		c := s.sd.ShardCounters(i)
		st.PerShard[i] = ShardStats{
			Vertices: s.sd.ShardSize(i),
			Merged:   s.sd.Merged(i),
			IO: IOStats{
				BlocksRead:       c.BlocksRead,
				EntriesRead:      c.EntriesRead,
				TableEntriesRead: c.TableEntriesRead,
				TablesRead:       c.TablesRead,
				TableHits:        c.TableHits,
			},
		}
	}
	return st
}
