# Development targets. CI runs the same commands; see .github/workflows/ci.yml.

.PHONY: test bench-smoke bench-json bench-json-check

test:
	go build ./... && go test ./...

# One iteration of every benchmark (no unit tests), so benches cannot
# rot unnoticed. CI invokes this target.
bench-smoke:
	go test -run xxx -bench=. -benchtime=1x ./...

# Regenerate the committed serving sweep numbers (BENCH_topk.json):
# the shard-plane sweep (ns/op, allocs/op, summary-table derives across
# shard counts, shared versus detached planes), the gather chunk-size
# sweep, the batch amortization sweep, the snapshot startup sweep
# (open wall time + first-query latency for build/eager/lazy/mmap at
# several graph sizes), the instrumentation overhead sweep (warm-cache
# /query with observability on versus off), and the columnar layout
# sweep (row-major baseline versus SoA block kernels). -json implies
# every sweep, so the flags below stay complete automatically.
bench-json:
	go run ./cmd/benchkit -exp topk,batch -json BENCH_topk.json

# Drift check for the committed sweep document: regenerate the sweeps in
# memory and fail when BENCH_topk.json's schema (key paths, row names)
# no longer matches what benchkit writes. CI runs this; fix drift by
# committing a fresh make bench-json.
bench-json-check:
	go run ./cmd/benchkit -exp topk,batch -drift BENCH_topk.json
