# Development targets. CI runs the same commands; see .github/workflows/ci.yml.

.PHONY: test bench-smoke bench-json

test:
	go build ./... && go test ./...

# One iteration of every benchmark (no unit tests), so benches cannot
# rot unnoticed. CI invokes this target.
bench-smoke:
	go test -run xxx -bench=. -benchtime=1x ./...

# Regenerate the committed shard-plane sweep numbers (BENCH_topk.json):
# ns/op, allocs/op, and summary-table derives across shard counts with the
# shared derived plane versus detached per-shard planes.
bench-json:
	go run ./cmd/benchkit -exp topk -json BENCH_topk.json
