package ktpm_test

import (
	"fmt"

	"ktpm"
)

// buildExampleDB prepares the paper's Figure 1 patent-citation graph.
func buildExampleDB() *ktpm.Database {
	gb := ktpm.NewGraphBuilder()
	c := gb.AddNode("C") // a Computer Science patent ...
	e := gb.AddNode("E") // ... cited by an Economy patent
	s := gb.AddNode("S") // ... and by a Social Science patent
	x := gb.AddNode("E")
	gb.AddEdge(c, e)
	gb.AddEdge(c, s)
	gb.AddEdge(e, x)
	g, err := gb.Build()
	if err != nil {
		panic(err)
	}
	db, err := ktpm.BuildDatabase(g, ktpm.DatabaseOptions{})
	if err != nil {
		panic(err)
	}
	return db
}

func ExampleDatabase_TopK() {
	db := buildExampleDB()
	q, _ := db.ParseQuery("C(E,S)")
	matches, _ := db.TopK(q, 2)
	for i, m := range matches {
		fmt.Printf("top-%d score=%d\n", i+1, m.Score)
	}
	// Output:
	// top-1 score=2
	// top-2 score=3
}

func ExampleDatabase_Stream() {
	db := buildExampleDB()
	q, _ := db.ParseQuery("C(E)")
	st := db.Stream(q)
	for {
		m, ok := st.Next()
		if !ok {
			break
		}
		fmt.Printf("score=%d\n", m.Score)
	}
	// Output:
	// score=1
	// score=2
}

func ExampleDatabase_CountMatches() {
	db := buildExampleDB()
	q, _ := db.ParseQuery("C(E,S)")
	fmt.Println(db.CountMatches(q))
	// Output:
	// 2
}

func ExampleMatch_Binding() {
	db := buildExampleDB()
	q, _ := db.ParseQuery("C(E,S)")
	matches, _ := db.TopK(q, 1)
	cNode, _ := matches[0].Binding(q, "C")
	fmt.Printf("the C patent is node %d with label %s\n",
		cNode, db.Graph().LabelOf(cNode))
	// Output:
	// the C patent is node 0 with label C
}

func ExampleDatabase_Explain() {
	db := buildExampleDB()
	q, _ := db.ParseQuery("C(S)")
	plan, _ := db.Explain(q)
	fmt.Print(plan)
	// Output:
	// query C(S)
	//   edge C //S: table 1 entries, 1 child candidates
	//   run-time graph: <=1 edges raw, 2 nodes / 1 edges after pruning
	//   total matches: 1
}

func ExampleTaxonomy() {
	tx := ktpm.NewTaxonomy()
	tx.AddSubsumption("publication", "article")
	tx.AddSubsumption("publication", "book")
	for _, l := range tx.Contains("publication") {
		fmt.Println(l)
	}
	// Output:
	// publication
	// article
	// book
}
