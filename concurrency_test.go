package ktpm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomDatabase builds a deterministic pseudo-random labeled DAG-ish
// graph large enough that concurrent queries overlap inside the store's
// lazy table caches.
func randomDatabase(t testing.TB, n int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d", "e"}
	gb := NewGraphBuilder()
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		ids[i] = gb.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		// A few forward edges per node keep everything reachable enough
		// for multi-level queries without blowing up the closure.
		for e := 0; e < 3; e++ {
			from := ids[rng.Intn(i)]
			gb.AddWeightedEdge(from, ids[i], int32(1+rng.Intn(3)))
		}
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	db, err := BuildDatabase(g, DatabaseOptions{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestConcurrentTopKSharedDatabase runs many TopK calls of every
// algorithm in parallel against one shared Database and checks each
// result against a sequentially computed golden answer. Run with -race
// (CI does) to surface shared-mutation bugs in the store's lazy caches,
// the wildcard merge path, and the label interner.
func TestConcurrentTopKSharedDatabase(t *testing.T) {
	db := randomDatabase(t, 300, 42)
	queries := []string{"a(b)", "a(b,c)", "b(c(d))", "a(*,c)", "*(b)", "a(/b)", "c(d,e)"}
	algos := []Algorithm{AlgoTopkEN, AlgoTopk, AlgoDPB, AlgoDPP}
	const k = 12

	type golden struct {
		scores []int64
	}
	want := make(map[string]golden)
	for _, qs := range queries {
		q, err := db.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := db.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		g := golden{scores: make([]int64, len(ms))}
		for i, m := range ms {
			g.scores[i] = m.Score
		}
		want[qs] = g
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qs := queries[(w+i)%len(queries)]
				algo := algos[(w+i)%len(algos)]
				// Parse inside the goroutine: the parser interns labels
				// into the shared interner concurrently.
				q, err := db.ParseQuery(qs)
				if err != nil {
					t.Errorf("worker %d: parse %q: %v", w, qs, err)
					return
				}
				ms, err := db.TopKWith(q, k, Options{Algorithm: algo})
				if err != nil {
					t.Errorf("worker %d: %q/%v: %v", w, qs, algo, err)
					return
				}
				g := want[qs]
				if len(ms) != len(g.scores) {
					t.Errorf("worker %d: %q/%v returned %d matches, want %d", w, qs, algo, len(ms), len(g.scores))
					return
				}
				for j, m := range ms {
					if m.Score != g.scores[j] {
						t.Errorf("worker %d: %q/%v match %d score %d, want %d", w, qs, algo, j, m.Score, g.scores[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Counters stayed coherent under the concurrent load.
	io := db.IOStats()
	if io.EntriesRead < io.TableEntriesRead {
		t.Errorf("I/O counters inconsistent: EntriesRead %d < TableEntriesRead %d", io.EntriesRead, io.TableEntriesRead)
	}
}

// TestConcurrentStreamsAndExplain interleaves incremental Stream
// consumers with Explain and parse-time interning of query-only labels,
// all against one Database.
func TestConcurrentStreamsAndExplain(t *testing.T) {
	db := randomDatabase(t, 200, 7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0:
				q, err := db.ParseQuery("a(b,c)")
				if err != nil {
					t.Error(err)
					return
				}
				st := db.Stream(q)
				var last int64
				for i := 0; i < 20; i++ {
					m, ok := st.Next()
					if !ok {
						break
					}
					if m.Score < last {
						t.Errorf("stream scores regressed: %d after %d", m.Score, last)
						return
					}
					last = m.Score
				}
			case 1:
				q, err := db.ParseQuery("b(c(d))")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Explain(q); err != nil {
					t.Error(err)
				}
			case 2:
				// Interning a label the graph has never seen exercises the
				// interner's write path while readers resolve names.
				qs := fmt.Sprintf("a(zz_%d)", w)
				q, err := db.ParseQuery(qs)
				if err != nil {
					t.Error(err)
					return
				}
				ms, err := db.TopK(q, 5)
				if err != nil {
					t.Error(err)
					return
				}
				if len(ms) != 0 {
					t.Errorf("query %q with unknown label returned %d matches", qs, len(ms))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParseQueryDoesNotGrowGraphInterner guards the daemon's memory
// bound: query strings full of never-seen labels must not leave anything
// behind in the shared graph interner (they parse into a per-query
// overlay instead).
func TestParseQueryDoesNotGrowGraphInterner(t *testing.T) {
	db := paperFig1(t)
	before := db.g.Labels.Len()
	for i := 0; i < 100; i++ {
		qs := fmt.Sprintf("C(attacker_%d(E),junk_%d)", i, i)
		q, err := db.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		// The overlay still resolves names for rendering and execution.
		if q.Canonical() == "" {
			t.Fatal("canonical form empty")
		}
		ms, err := db.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Fatalf("unknown-label query %q matched %d times", qs, len(ms))
		}
	}
	if after := db.g.Labels.Len(); after != before {
		t.Fatalf("graph interner grew from %d to %d labels", before, after)
	}
	// Known-label queries still work after the hostile traffic.
	q, err := db.ParseQuery("C(E,S)")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := db.TopK(q, 5)
	if err != nil || len(ms) == 0 || ms[0].Score != 2 {
		t.Fatalf("known query broken after overlay parses: %v, %d matches", err, len(ms))
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"topk-en", AlgoTopkEN, true},
		{"Topk-EN", AlgoTopkEN, true},
		{"topk", AlgoTopk, true},
		{"DP-B", AlgoDPB, true},
		{"dp-p", AlgoDPP, true},
		{"", 0, false},
		{"quantum", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseAlgorithm(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestQueryCanonical(t *testing.T) {
	db := paperFig1(t)
	cases := []struct {
		in, want string
	}{
		{"C(E,S)", "C(E,S)"},
		{"C(S,E)", "C(E,S)"},
		{"C(S,/E)", "C(/E,S)"},
		{"C(S(E,C),E(/C,S))", "C(E(/C,S),S(C,E))"},
		{"C", "C"},
		{"*(S,E)", "*(E,S)"},
	}
	for _, c := range cases {
		q, err := db.ParseQuery(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if got := q.Canonical(); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
		// The canonical form is a fixed point: parsing it and
		// canonicalizing again must not change it.
		qc, err := db.ParseQuery(q.Canonical())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.Canonical(), err)
		}
		if got := qc.Canonical(); got != c.want {
			t.Errorf("Canonical not a fixed point: %q -> %q", c.want, got)
		}
	}
}
