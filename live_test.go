package ktpm

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// liveBase generates a reproducible base graph as raw parts, so tests
// can rebuild the "never ingested" reference database from base plus
// any ingested edge set.
func liveBase(rng *rand.Rand, n int) (labels []string, edges []IngestEdge) {
	names := []string{"a", "b", "c", "d", "e"}
	labels = make([]string, n)
	for i := range labels {
		labels[i] = names[rng.Intn(len(names))]
	}
	for i := 1; i < n; i++ {
		for e := 0; e < 2; e++ {
			edges = append(edges, IngestEdge{From: int32(rng.Intn(i)), To: int32(i), Weight: int32(1 + rng.Intn(3))})
		}
	}
	return labels, edges
}

func liveNewEdges(rng *rand.Rand, n, count int) []IngestEdge {
	var out []IngestEdge
	for len(out) < count {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		out = append(out, IngestEdge{From: u, To: v, Weight: int32(1 + rng.Intn(3))})
	}
	return out
}

func buildLiveDB(t testing.TB, labels []string, edges []IngestEdge) *Database {
	t.Helper()
	gb := NewGraphBuilder()
	for _, l := range labels {
		gb.AddNode(l)
	}
	for _, e := range edges {
		gb.AddWeightedEdge(e.From, e.To, e.Weight)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	db, err := BuildDatabase(g, DatabaseOptions{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var liveQueries = []string{"a(b)", "a(b,c(d))", "a(*,c)", "a(/b)", "c(d,e)", "e"}

// assertLiveMatchesReference checks that the live backend answers every
// query byte-identically to a from-scratch BuildDatabase over the same
// combined edge set — unsharded and at shard counts {1, 2, 4}.
func assertLiveMatchesReference(t *testing.T, tag string, live *Live, ref *Database) {
	t.Helper()
	cur := live.Current()
	sharded := make(map[int]*ShardedDatabase)
	for _, n := range []int{1, 2, 4} {
		sh, err := cur.Shard(n, PartitionByLabel())
		if err != nil {
			t.Fatalf("%s: shard %d: %v", tag, n, err)
		}
		sharded[n] = sh
	}
	for _, qs := range liveQueries {
		rq, err := ref.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		lq, err := live.ParseQuery(qs)
		if err != nil {
			t.Fatalf("%s: live parse %q: %v", tag, qs, err)
		}
		for _, k := range []int{1, 7, 5000} {
			want, err := ref.TopK(rq, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := live.TopKWith(lq, k, Options{})
			if err != nil {
				t.Fatalf("%s: live %q k=%d: %v", tag, qs, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: query %q k=%d: live result differs from from-scratch rebuild\n got %v\nwant %v", tag, qs, k, got, want)
			}
			for n, sh := range sharded {
				gotSh, err := sh.TopK(lq, k)
				if err != nil {
					t.Fatalf("%s: shards=%d %q k=%d: %v", tag, n, qs, k, err)
				}
				if !reflect.DeepEqual(gotSh, want) {
					t.Fatalf("%s: shards=%d query %q k=%d: sharded live result differs", tag, n, qs, k)
				}
			}
		}
	}
}

// TestLiveMatchesRebuild is the write-path result-identity property:
// after every ingest batch, and both before and after compaction, the
// overlay-merged serving state must answer byte-identically to a
// from-scratch BuildDatabase over base+delta edges — across snapshot
// formats, generation backing modes, and shard counts {1, 2, 4}.
func TestLiveMatchesRebuild(t *testing.T) {
	for _, format := range []SnapshotFormat{SnapshotV1, SnapshotV2} {
		for _, mode := range allSnapshotModes {
			t.Run(fmt.Sprintf("%v/%v", format, mode), func(t *testing.T) {
				rng := rand.New(rand.NewSource(91))
				labels, baseEdges := liveBase(rng, 60)
				boot := buildLiveDB(t, labels, baseEdges)
				live, err := OpenLive(boot, LiveConfig{
					Dir:              t.TempDir(),
					Fsync:            "never", // durability is exercised elsewhere; keep the property loop fast
					CompactThreshold: -1,      // compaction is driven explicitly below
					SnapshotFormat:   format,
					SnapshotMode:     mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer live.Close()

				all := append([]IngestEdge(nil), baseEdges...)
				epoch := live.Epoch()
				for batch := 0; batch < 3; batch++ {
					edges := liveNewEdges(rng, 60, 6+rng.Intn(5))
					if _, err := live.Ingest(edges); err != nil {
						t.Fatalf("batch %d: %v", batch, err)
					}
					if e := live.Epoch(); e <= epoch {
						t.Fatalf("batch %d: epoch did not advance (%d -> %d)", batch, epoch, e)
					} else {
						epoch = e
					}
					all = append(all, edges...)
					ref := buildLiveDB(t, labels, all)
					assertLiveMatchesReference(t, fmt.Sprintf("batch %d (pre-compaction)", batch), live, ref)
				}

				if err := live.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
				st := live.IngestStats()
				if st.Compaction.Count != 1 || st.Overlay.Entries != 0 || st.Compaction.Generation != 1 {
					t.Fatalf("post-compaction stats: %+v", st)
				}
				if st.Overlay.Watermark != st.LastLSN {
					t.Fatalf("watermark %d != last lsn %d after compaction", st.Overlay.Watermark, st.LastLSN)
				}
				ref := buildLiveDB(t, labels, all)
				assertLiveMatchesReference(t, "post-compaction", live, ref)

				// Ingest on top of the compacted generation: the merged
				// source now overlays a reopened snapshot base.
				edges := liveNewEdges(rng, 60, 8)
				if _, err := live.Ingest(edges); err != nil {
					t.Fatal(err)
				}
				all = append(all, edges...)
				ref = buildLiveDB(t, labels, all)
				assertLiveMatchesReference(t, "post-compaction ingest", live, ref)
			})
		}
	}
}

// TestLiveRecovery closes and reopens the write path at every stage:
// WAL-only (replay rebuilds the overlay), post-compaction (CURRENT
// restores the generation), and post-compaction-plus-tail. Every
// reopen must serve byte-identically to the never-closed reference.
func TestLiveRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	labels, baseEdges := liveBase(rng, 50)
	dir := t.TempDir()
	cfg := LiveConfig{Dir: dir, Fsync: "always", CompactThreshold: -1, SnapshotFormat: SnapshotV2, SnapshotMode: SnapshotLazy}

	open := func() *Live {
		t.Helper()
		// A fresh boot database every time, as a real restart would build.
		live, err := OpenLive(buildLiveDB(t, labels, baseEdges), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return live
	}

	live := open()
	all := append([]IngestEdge(nil), baseEdges...)
	var lastLSN uint64
	for batch := 0; batch < 3; batch++ {
		edges := liveNewEdges(rng, 50, 5)
		lsn, err := live.Ingest(edges)
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
		all = append(all, edges...)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL-only recovery: no compaction ever ran, so the overlay must be
	// rebuilt purely from the journal.
	live = open()
	st := live.IngestStats()
	if st.WAL.RecoveredRecords != 3 || st.WAL.LastLSN != lastLSN {
		t.Fatalf("wal-only recovery stats: %+v", st.WAL)
	}
	if st.Overlay.PendingBatches != 3 {
		t.Fatalf("recovered pending batches = %d, want 3", st.Overlay.PendingBatches)
	}
	assertLiveMatchesReference(t, "wal-only recovery", live, buildLiveDB(t, labels, all))

	// Compact, ingest a tail, close: recovery must restore the
	// generation and replay only the tail.
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	watermark := live.IngestStats().Overlay.Watermark
	tail := liveNewEdges(rng, 50, 4)
	if _, err := live.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	all = append(all, tail...)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	live = open()
	defer live.Close()
	st = live.IngestStats()
	if st.Compaction.Generation != 1 {
		t.Fatalf("recovered generation = %d, want 1", st.Compaction.Generation)
	}
	if st.Overlay.Watermark != watermark {
		t.Fatalf("recovered watermark = %d, want %d", st.Overlay.Watermark, watermark)
	}
	if st.Overlay.PendingBatches != 1 {
		t.Fatalf("recovered pending batches = %d, want 1 (only the post-compaction tail)", st.Overlay.PendingBatches)
	}
	assertLiveMatchesReference(t, "generation+tail recovery", live, buildLiveDB(t, labels, all))

	// Compacting the recovered tail and recovering once more exercises
	// generation N -> N+1 supersession.
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	live = open()
	defer live.Close()
	st = live.IngestStats()
	if st.Compaction.Generation != 2 || st.Overlay.PendingBatches != 0 {
		t.Fatalf("second recovery stats: %+v", st)
	}
	if st.WAL.RecoveredRecords != 0 {
		t.Fatalf("wal should be empty after compaction, recovered %d records", st.WAL.RecoveredRecords)
	}
	assertLiveMatchesReference(t, "second generation recovery", live, buildLiveDB(t, labels, all))
}

func TestLiveIngestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels, baseEdges := liveBase(rng, 20)
	live, err := OpenLive(buildLiveDB(t, labels, baseEdges), LiveConfig{Dir: t.TempDir(), Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	for name, batch := range map[string][]IngestEdge{
		"empty batch":  {},
		"unknown node": {{From: 0, To: 99, Weight: 1}},
		"negative id":  {{From: -1, To: 2, Weight: 1}},
		"self loop":    {{From: 3, To: 3, Weight: 1}},
		"negative w":   {{From: 0, To: 1, Weight: -2}},
	} {
		if _, err := live.Ingest(batch); !errors.Is(err, ErrInvalidEdge) {
			t.Fatalf("%s: err = %v, want ErrInvalidEdge", name, err)
		}
	}
	st := live.IngestStats()
	if st.RejectedBatches != 5 || st.AckedBatches != 0 || st.WAL.LastLSN != 0 {
		t.Fatalf("rejected batches must not touch the WAL: %+v", st)
	}

	// Weight 0 means unit weight and is accepted.
	if _, err := live.Ingest([]IngestEdge{{From: 0, To: 5}}); err != nil {
		t.Fatalf("unit-weight ingest: %v", err)
	}

	// MaxDistance-truncated bases are rejected up front.
	g, _ := func() (*Graph, error) {
		gb := NewGraphBuilder()
		gb.AddNode("a")
		gb.AddNode("b")
		gb.AddEdge(0, 1)
		return gb.Build()
	}()
	trunc, err := BuildDatabase(g, DatabaseOptions{MaxDistance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLive(trunc, LiveConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("OpenLive accepted a MaxDistance-truncated database")
	}
}

// TestLiveConcurrentQueryIngest runs queries against the live backend
// while batches land and a compaction swaps the base underneath them —
// the atomic-publish invariant under -race.
func TestLiveConcurrentQueryIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	labels, baseEdges := liveBase(rng, 60)
	live, err := OpenLive(buildLiveDB(t, labels, baseEdges), LiveConfig{
		Dir: t.TempDir(), Fsync: "never", CompactThreshold: 200, SnapshotFormat: SnapshotV2, SnapshotMode: SnapshotMMap,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qs := liveQueries[(w+i)%len(liveQueries)]
				q, err := live.ParseQuery(qs)
				if err != nil {
					t.Errorf("parse %q: %v", qs, err)
					return
				}
				if _, err := live.TopKWith(q, 10, Options{}); err != nil {
					t.Errorf("query %q: %v", qs, err)
					return
				}
			}
		}(w)
	}

	all := append([]IngestEdge(nil), baseEdges...)
	for batch := 0; batch < 12; batch++ {
		edges := liveNewEdges(rng, 60, 6)
		if _, err := live.Ingest(edges); err != nil {
			t.Fatal(err)
		}
		all = append(all, edges...)
	}
	close(stop)
	wg.Wait()
	if err := live.Compact(); err != nil { // drain whatever is left, deterministically
		t.Fatal(err)
	}
	assertLiveMatchesReference(t, "after concurrent traffic", live, buildLiveDB(t, labels, all))
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
}
